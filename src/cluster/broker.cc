#include "cluster/broker.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <set>

#include "cluster/property_store.h"
#include "common/hash.h"
#include "common/logging.h"
#include "query/parser.h"

namespace pinot {

Broker::Broker(std::string id, ClusterContext ctx, Options options)
    : id_(std::move(id)),
      ctx_(std::move(ctx)),
      options_(options),
      metrics_(ctx_.metrics != nullptr ? ctx_.metrics
                                       : MetricsRegistry::Default()),
      pool_(options.scatter_threads),
      slow_query_log_(SlowQueryLog::Options{
          options.slow_query_threshold_millis,
          options.slow_query_log_capacity}),
      rng_(options.seed) {}

Broker::Broker(std::string id, ClusterContext ctx)
    : Broker(std::move(id), std::move(ctx), Options()) {}

Broker::~Broker() {
  if (view_watch_handle_ >= 0) {
    ctx_.cluster->UnwatchExternalView(view_watch_handle_);
  }
}

void Broker::Start() {
  ctx_.cluster->RegisterInstance(id_, {"broker"}, nullptr);
  view_watch_handle_ = ctx_.cluster->WatchExternalView(
      [this](const std::string& table) { RebuildRouting(table); });
}

void Broker::RebuildRouting(const std::string& physical_table) {
  auto routing = std::make_shared<TableRouting>();

  // Table config (for strategy parameters); may be absent for tables we
  // only see through the view.
  auto encoded =
      ctx_.property_store->Get(zkpaths::TableConfigPath(physical_table));
  if (encoded.ok()) {
    ByteReader reader(*encoded);
    auto config = TableConfig::Deserialize(&reader);
    if (config.ok()) {
      routing->config = std::move(config).value();
      routing->config_loaded = true;
    }
  }

  const TableView view = ctx_.cluster->GetExternalView(physical_table);
  routing->segment_servers = QueryableReplicas(view);

  // Partition metadata for partition-aware pruning.
  if (routing->config_loaded &&
      routing->config.routing == RoutingStrategy::kPartitionAware) {
    for (const auto& [segment, servers] : routing->segment_servers) {
      auto meta_encoded = ctx_.property_store->Get(
          zkpaths::SegmentMetadataPath(physical_table, segment));
      int32_t partition = -1;
      if (meta_encoded.ok()) {
        auto meta = SegmentZkMetadata::Decode(*meta_encoded);
        if (meta.ok()) partition = meta->partition;
      }
      routing->segment_partitions[segment] = partition;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!routing->segment_servers.empty()) {
    switch (routing->config_loaded ? routing->config.routing
                                   : RoutingStrategy::kBalanced) {
      case RoutingStrategy::kBalanced:
        for (int i = 0; i < options_.balanced_tables; ++i) {
          routing->routing_tables.push_back(
              BuildBalancedRoutingTable(routing->segment_servers, &rng_));
        }
        break;
      case RoutingStrategy::kGenerated: {
        GeneratedRoutingOptions gen;
        gen.target_server_count = routing->config.target_servers_per_query;
        gen.tables_to_generate = routing->config.routing_tables_to_generate;
        gen.tables_to_keep = routing->config.routing_tables_to_keep;
        routing->routing_tables =
            GenerateRoutingTables(routing->segment_servers, gen, &rng_);
        break;
      }
      case RoutingStrategy::kPartitionAware:
        // Built per query from the filter (section 4.4).
        break;
    }
  }
  routing_[physical_table] = std::move(routing);
}

std::shared_ptr<Broker::TableRouting> Broker::GetRouting(
    const std::string& physical_table) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = routing_.find(physical_table);
    if (it != routing_.end()) return it->second;
  }
  RebuildRouting(physical_table);
  std::lock_guard<std::mutex> lock(mutex_);
  return routing_[physical_table];
}

namespace {

// Finds EQ/IN predicates on `column` in the top-level conjunction and
// returns the matching partition set; `all_partitions` when the filter
// does not constrain the column.
void CollectPartitionValues(const FilterNode& node, const std::string& column,
                            std::vector<Value>* values, bool* constrained) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      if (node.predicate.column == column &&
          (node.predicate.op == PredicateOp::kEq ||
           node.predicate.op == PredicateOp::kIn)) {
        *constrained = true;
        for (const auto& v : node.predicate.values) values->push_back(v);
      }
      return;
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        CollectPartitionValues(child, column, values, constrained);
      }
      return;
    case FilterNode::Kind::kOr:
      // Partition pruning across OR requires every branch to constrain the
      // column; keep it conservative and do not prune.
      return;
  }
}

}  // namespace

RoutingTable Broker::BuildPartitionAwareTable(const TableRouting& routing,
                                              const Query& query) {
  // Which partitions can match the query?
  std::vector<Value> values;
  bool constrained = false;
  if (query.filter.has_value() && routing.config.num_partitions > 0) {
    CollectPartitionValues(*query.filter, routing.config.partition_column,
                           &values, &constrained);
  }
  std::vector<bool> wanted(
      std::max(routing.config.num_partitions, 1), !constrained);
  if (constrained) {
    for (const auto& v : values) {
      const int partition = KafkaPartition(
          ValueToString(v), routing.config.num_partitions);
      wanted[partition] = true;
    }
  }

  RoutingTable table;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [segment, servers] : routing.segment_servers) {
    auto part_it = routing.segment_partitions.find(segment);
    const int32_t partition =
        part_it == routing.segment_partitions.end() ? -1 : part_it->second;
    // Unpartitioned segments (-1) must always be queried.
    if (partition >= 0 && partition < static_cast<int>(wanted.size()) &&
        !wanted[partition]) {
      continue;
    }
    const std::string& server =
        servers[rng_.NextUint64(servers.size())];
    table.server_segments[server].push_back(segment);
  }
  return table;
}

namespace {

// Whole-call failures worth retrying on another replica: the server was
// unreachable, died mid-request, or ran out of time. Anything else (e.g. a
// routing race reported as NotFound) carries data plus a per-segment
// status and is merged as-is.
bool IsRetryableScatterFailure(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

int64_t SteadyMicros(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

void Broker::QueryPhysicalTable(const std::string& physical_table,
                                const Query& query,
                                std::chrono::steady_clock::time_point deadline,
                                PartialResult* merged, QueryTrace* trace,
                                TraceSpan* scatter_span) {
  std::shared_ptr<TableRouting> routing = GetRouting(physical_table);
  if (routing->segment_servers.empty()) {
    return;  // Table has no queryable segments (not an error).
  }

  // Pick the routing table (section 3.3.3 step 2: "picked at random").
  RoutingTable table;
  const RoutingStrategy strategy = routing->config_loaded
                                       ? routing->config.routing
                                       : RoutingStrategy::kBalanced;
  if (strategy == RoutingStrategy::kPartitionAware) {
    table = BuildPartitionAwareTable(*routing, query);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    if (routing->routing_tables.empty()) return;
    table = routing->routing_tables[rng_.NextUint64(
        routing->routing_tables.size())];
  }

  // Why each segment is (currently) assigned to its server. Wave 0 comes
  // straight from the routing table; retry waves record the prior outcome
  // and how many untried live replicas the picker chose among, so a
  // failover run is explainable from the trace alone.
  const char* initial_reason = strategy == RoutingStrategy::kPartitionAware
                                   ? "partition-aware"
                                   : "routing-table";
  std::map<std::string, std::string> pick_reason;
  for (const auto& [server, segments] : table.server_segments) {
    for (const auto& segment : segments) pick_reason[segment] = initial_reason;
  }
  // Last failure outcome per segment, feeding the next wave's pick reason.
  std::map<std::string, std::string> last_outcome;

  struct ScatterCall {
    std::string server;
    std::vector<std::string> segments;
    PartialResult result;
    std::future<void> done;
    std::chrono::steady_clock::time_point started;
  };

  // Scatter/gather with bounded replica failover: each wave scatters the
  // still-unanswered segments, waits for its slice of the remaining
  // deadline budget, and re-routes the segments of failed calls to a
  // replica that has not failed them yet. Segments whose call answered are
  // merged exactly once — a retried call's original result is discarded
  // wholesale, never merged alongside its replacement.
  std::map<std::string, std::vector<std::string>> assignment =
      std::move(table.server_segments);
  std::map<std::string, std::set<std::string>> tried_servers;
  std::vector<std::string> dead_segments;  // Replicas/retries exhausted.
  const int max_attempts = std::max(1, options_.max_scatter_retries + 1);

  for (int attempt = 0; attempt < max_attempts && !assignment.empty();
       ++attempt) {
    std::vector<std::string> failed_segments;

    // Fills the pick-reason list parallel to `segments` from the current
    // assignment reasons.
    auto reasons_for = [&](const std::vector<std::string>& segments) {
      std::vector<std::string> reasons;
      reasons.reserve(segments.size());
      for (const auto& segment : segments) {
        auto it = pick_reason.find(segment);
        reasons.push_back(it != pick_reason.end() ? it->second
                                                  : initial_reason);
      }
      return reasons;
    };

    // One `call:<server>` child span per scatter call, opened at submit
    // time and closed at gather: wave + outcome, and the per-segment pick
    // reason on retry waves (wave 0 gets a single whole-call pick label).
    auto add_call_span = [&](const std::string& server,
                             const std::vector<std::string>& segments,
                             const std::vector<std::string>& reasons,
                             int64_t start_micros, double latency_millis,
                             const std::string& outcome,
                             std::vector<TraceSpan>* children) {
      if (scatter_span == nullptr) return;
      TraceSpan call_span = TraceSpan::OpenAt("call:" + server, start_micros);
      call_span.duration_micros =
          static_cast<int64_t>(latency_millis * 1000.0);
      call_span.Label("outcome", outcome);
      if (attempt == 0) {
        call_span.Label("pick", initial_reason);
      } else {
        for (size_t i = 0; i < segments.size(); ++i) {
          call_span.Label("pick:" + segments[i], reasons[i]);
        }
      }
      call_span.Annotate("wave", attempt);
      call_span.Annotate("segments", static_cast<int64_t>(segments.size()));
      if (children != nullptr) {
        for (auto& child : *children) call_span.AddChild(std::move(child));
        children->clear();
      }
      scatter_span->AddChild(std::move(call_span));
    };

    auto record_failure = [&](const std::string& server,
                              const std::vector<std::string>& segments,
                              int64_t start_micros, double latency_millis,
                              std::string outcome) {
      add_call_span(server, segments, reasons_for(segments), start_micros,
                    latency_millis, outcome, nullptr);
      ScatterTraceEvent event;
      event.physical_table = physical_table;
      event.server = server;
      event.segments = segments;
      event.pick_reasons = reasons_for(segments);
      event.attempt = attempt;
      event.latency_millis = latency_millis;
      event.outcome = std::move(outcome);
      for (const auto& segment : segments) {
        tried_servers[segment].insert(server);
        failed_segments.push_back(segment);
        last_outcome[segment] = event.outcome;
      }
      trace->events.push_back(std::move(event));
    };

    // Scatter (step 3). Dead or unknown servers fail immediately and their
    // segments join this wave's retry set.
    std::vector<std::shared_ptr<ScatterCall>> calls;
    const int64_t remaining_millis = std::max<int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline - std::chrono::steady_clock::now())
               .count());
    for (auto& [server, segments] : assignment) {
      QueryServerApi* endpoint = ctx_.server_endpoint
                                     ? ctx_.server_endpoint(server)
                                     : nullptr;
      if (endpoint == nullptr || !ctx_.cluster->IsInstanceReachable(server)) {
        record_failure(server, segments, TraceSpan::NowMicros(), 0,
                       "unreachable");
        continue;
      }
      auto call = std::make_shared<ScatterCall>();
      call->server = server;
      call->segments = segments;
      ServerQueryRequest request;
      request.physical_table = physical_table;
      request.query = query;
      request.segments = segments;
      request.tenant = routing->config_loaded
                           ? routing->config.server_tenant
                           : std::string();
      request.timeout_millis = remaining_millis;
      call->started = std::chrono::steady_clock::now();
      call->done = pool_.Submit([call, endpoint, request = std::move(request)] {
        call->result = endpoint->ExecuteServerQuery(request);
      });
      calls.push_back(std::move(call));
    }

    // Gather (steps 6-7). Every wave but the last waits only for its share
    // of the remaining budget so failed segments still have time to retry;
    // the last wave runs to the query deadline. Timed-out calls are
    // abandoned (the worker lambda keeps the call alive via shared
    // ownership) and never merged, even if they complete later.
    auto attempt_deadline = deadline;
    const auto now = std::chrono::steady_clock::now();
    if (attempt + 1 < max_attempts && deadline > now) {
      attempt_deadline = now + (deadline - now) / (max_attempts - attempt);
    }
    for (auto& call : calls) {
      if (call->done.wait_until(attempt_deadline) ==
          std::future_status::ready) {
        const double latency = MillisSince(call->started);
        const Status& st = call->result.status;
        if (st.ok() || !IsRetryableScatterFailure(st.code())) {
          ScatterTraceEvent event;
          event.physical_table = physical_table;
          event.server = call->server;
          event.segments = std::move(call->segments);
          event.pick_reasons = reasons_for(event.segments);
          event.attempt = attempt;
          event.latency_millis = latency;
          event.outcome = st.ok() ? "ok" : "error: " + st.ToString();
          // Server-side spans (TRACE/EXPLAIN) nest under this call's span
          // instead of riding the merged partial.
          add_call_span(call->server, event.segments, event.pick_reasons,
                        SteadyMicros(call->started), latency, event.outcome,
                        &call->result.spans);
          trace->events.push_back(std::move(event));
          merged->Merge(std::move(call->result));
        } else {
          record_failure(call->server, call->segments,
                         SteadyMicros(call->started), latency,
                         "failed: " + st.ToString());
        }
      } else {
        // The worker still owns the abandoned call and may write its
        // result concurrently; only submit-time data is read here.
        ++trace->timeouts;
        record_failure(call->server, call->segments,
                       SteadyMicros(call->started), MillisSince(call->started),
                       "timeout");
      }
    }

    // Re-route failed segments to untried live replicas (next wave).
    assignment.clear();
    if (failed_segments.empty()) break;
    if (attempt + 1 >= max_attempts) {
      dead_segments.insert(dead_segments.end(), failed_segments.begin(),
                           failed_segments.end());
      break;
    }
    for (const auto& segment : failed_segments) {
      auto servers_it = routing->segment_servers.find(segment);
      std::string replica;
      size_t candidates = 0;
      if (servers_it != routing->segment_servers.end()) {
        const std::set<std::string>& tried = tried_servers[segment];
        for (const auto& server : servers_it->second) {
          if (tried.count(server) == 0 &&
              ctx_.cluster->IsInstanceReachable(server)) {
            ++candidates;
          }
        }
        std::lock_guard<std::mutex> lock(mutex_);
        replica = PickReplica(
            servers_it->second, tried_servers[segment],
            [this](const std::string& s) {
              return ctx_.cluster->IsInstanceReachable(s);
            },
            &rng_);
      }
      if (replica.empty()) {
        dead_segments.push_back(segment);
      } else {
        ++trace->retries;
        pick_reason[segment] = "failover(" + last_outcome[segment] +
                               ", candidates=" +
                               std::to_string(candidates) + ")";
        assignment[replica].push_back(segment);
      }
    }
  }

  if (!dead_segments.empty()) {
    std::sort(dead_segments.begin(), dead_segments.end());
    dead_segments.erase(
        std::unique(dead_segments.begin(), dead_segments.end()),
        dead_segments.end());
    std::string message = "no live replica answered segments:";
    for (const auto& segment : dead_segments) message += " " + segment;
    message += " (table " + physical_table + ")";
    if (merged->status.ok()) {
      merged->status = Status::Unavailable(std::move(message));
    }
  }
}

QueryResult Broker::Execute(const std::string& pql) {
  auto query = ParsePql(pql);
  if (!query.ok()) {
    QueryResult result;
    result.partial = true;
    result.error_message = query.status().ToString();
    return result;
  }
  return ExecuteQuery(*query);
}

namespace {

// Defensive parse of the time-boundary property. A corrupt value (empty,
// non-numeric, trailing garbage, out of range) must not take the broker
// down — this path used to throw out of std::stoll on garbage znodes.
std::optional<int64_t> ParseTimeBoundary(const std::string& raw) {
  if (raw.empty()) return std::nullopt;
  // strtoll silently skips leading whitespace; treat it as corruption.
  if (std::isspace(static_cast<unsigned char>(raw.front()))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw.c_str(), &end, 10);
  if (errno == ERANGE || end != raw.c_str() + raw.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(parsed);
}

}  // namespace

QueryResult Broker::ExecuteQuery(const Query& query) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(options_.default_timeout_millis);
  PartialResult merged;
  QueryTrace trace;

  // Broker-level spans are built for every query, traced or not: route /
  // scatter / reduce are a handful of spans per request, and the slow-query
  // log needs them for queries that did not ask for TRACE.
  TraceSpan root = TraceSpan::Open("broker:" + id_);
  TraceSpan route_span = TraceSpan::Open("route");

  // Resolve the logical table into physical tables. A name that is already
  // physical is used as-is.
  std::vector<std::pair<std::string, Query>> plans;
  auto is_physical = [](const std::string& name) {
    return name.size() > 8 &&
           (name.rfind("_OFFLINE") == name.size() - 8 ||
            (name.size() > 9 && name.rfind("_REALTIME") == name.size() - 9));
  };
  if (is_physical(query.table)) {
    plans.emplace_back(query.table, query);
  } else {
    const std::string offline = query.table + "_OFFLINE";
    const std::string realtime = query.table + "_REALTIME";
    const bool has_offline =
        ctx_.property_store->Exists(zkpaths::TableConfigPath(offline));
    const bool has_realtime =
        ctx_.property_store->Exists(zkpaths::TableConfigPath(realtime));
    if (has_offline && has_realtime) {
      // Hybrid rewrite (section 3.3.3, Figure 6): offline serves strictly
      // before the time boundary, realtime serves at/after it.
      auto boundary_str =
          ctx_.property_store->Get(zkpaths::TimeBoundaryPath(query.table));
      auto config_encoded =
          ctx_.property_store->Get(zkpaths::TableConfigPath(offline));
      std::string time_column;
      if (config_encoded.ok()) {
        ByteReader reader(*config_encoded);
        auto config = TableConfig::Deserialize(&reader);
        if (config.ok()) time_column = config->schema.time_column();
      }
      std::optional<int64_t> boundary;
      if (boundary_str.ok()) {
        boundary = ParseTimeBoundary(*boundary_str);
        if (!boundary.has_value()) {
          PINOT_LOG_WARN << id_ << ": corrupt time boundary for "
                         << query.table << " (\"" << *boundary_str
                         << "\"); falling back to unfiltered hybrid plan";
        }
      }
      if (boundary.has_value() && !time_column.empty()) {
        auto with_time_filter = [&](const Query& base, bool offline_side) {
          Query q = base;
          Predicate pred;
          pred.column = time_column;
          pred.op = PredicateOp::kRange;
          if (offline_side) {
            pred.upper = *boundary - 1;
            pred.upper_inclusive = true;
          } else {
            pred.lower = *boundary;
            pred.lower_inclusive = true;
          }
          FilterNode leaf = FilterNode::Leaf(std::move(pred));
          if (q.filter.has_value()) {
            q.filter = FilterNode::And({*std::move(q.filter), std::move(leaf)});
          } else {
            q.filter = std::move(leaf);
          }
          return q;
        };
        plans.emplace_back(offline, with_time_filter(query, true));
        plans.emplace_back(realtime, with_time_filter(query, false));
      } else {
        plans.emplace_back(offline, query);
        plans.emplace_back(realtime, query);
      }
    } else if (has_offline) {
      plans.emplace_back(offline, query);
    } else if (has_realtime) {
      plans.emplace_back(realtime, query);
    } else {
      QueryResult result;
      result.partial = true;
      result.error_message = "no such table: " + query.table;
      return result;
    }
  }

  route_span.Close();
  metrics_->GetHistogram("broker_route_time_ms")
      ->Observe(route_span.duration_millis());
  root.AddChild(std::move(route_span));

  const MetricLabels table_labels = {{"table", query.table}};
  for (const auto& [physical, subquery] : plans) {
    TraceSpan scatter_span = TraceSpan::Open("scatter:" + physical);
    QueryPhysicalTable(physical, subquery, deadline, &merged, &trace,
                       &scatter_span);
    scatter_span.Close();
    metrics_->GetHistogram("broker_scatter_time_ms", table_labels)
        ->Observe(scatter_span.duration_millis());
    root.AddChild(std::move(scatter_span));
  }
  // Server spans were re-parented under their call spans before merging;
  // anything left (defensive) would dangle, so drop it.
  merged.spans.clear();

  QueryResult result;
  if (query.explain) {
    // EXPLAIN: planning already ran per segment inside the scatter; report
    // stats and the span tree without reducing (there are no rows).
    result.explain_only = true;
    result.stats = merged.stats;
    result.total_docs = merged.total_docs;
    if (!merged.status.ok()) {
      result.partial = true;
      result.error_message = merged.status.ToString();
    }
  } else {
    TraceSpan reduce_span = TraceSpan::Open("reduce");
    result = ReduceToFinalResult(query, std::move(merged));
    reduce_span.Close();
    metrics_->GetHistogram("broker_reduce_time_ms")
        ->Observe(reduce_span.duration_millis());
    root.AddChild(std::move(reduce_span));
  }
  const auto end = std::chrono::steady_clock::now();
  result.latency_millis =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count() /
      1000.0;
  root.Close();

  metrics_->GetCounter("broker_queries_total")->Increment();
  if (result.partial) {
    metrics_->GetCounter("broker_partial_results_total")->Increment();
  }
  if (trace.retries > 0) {
    metrics_->GetCounter("broker_scatter_retries_total")
        ->Increment(trace.retries);
  }
  if (trace.timeouts > 0) {
    metrics_->GetCounter("broker_scatter_timeouts_total")
        ->Increment(trace.timeouts);
  }
  metrics_->GetHistogram("broker_query_latency_ms", table_labels)
      ->Observe(result.latency_millis);

  if (!query.explain) {
    slow_query_log_.Record(result.latency_millis, query.ToString(), root);
  }
  if (query.trace || query.explain) result.span = std::move(root);
  result.trace = std::move(trace);
  return result;
}

}  // namespace pinot
