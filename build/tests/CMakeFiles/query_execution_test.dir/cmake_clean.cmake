file(REMOVE_RECURSE
  "CMakeFiles/query_execution_test.dir/query_execution_test.cc.o"
  "CMakeFiles/query_execution_test.dir/query_execution_test.cc.o.d"
  "query_execution_test"
  "query_execution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
