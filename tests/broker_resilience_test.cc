// Fault-injection tests for the broker's resilient scatter-gather: replica
// failover on injected failures, partitions, delays and drops; partial
// results with an execution trace when no replica is left; and the
// corrupt-time-boundary fallback.
#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;
using test::ToRow;

Schema KeyedSchema() {
  return *Schema::Make({
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Metric("hits", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
}

// An offline table with `num_segments` x `rows_each` rows, replicated
// `replicas` times, behind a broker with a short deadline so timeout tests
// run fast.
void SetUpKeyedTable(PinotCluster& cluster, int replicas, int num_segments,
                     int rows_each) {
  Controller* leader = cluster.leader_controller();
  TableConfig config;
  config.name = "keyed";
  config.type = TableType::kOffline;
  config.schema = KeyedSchema();
  config.num_replicas = replicas;
  ASSERT_TRUE(leader->AddTable(config).ok());
  for (int s = 0; s < num_segments; ++s) {
    SegmentBuildConfig build;
    build.table_name = "keyed_OFFLINE";
    build.segment_name = "seg_" + std::to_string(s);
    SegmentBuilder builder(KeyedSchema(), build);
    for (int i = 0; i < rows_each; ++i) {
      Row row;
      row.SetLong("memberId", s * rows_each + i)
          .SetLong("hits", 1)
          .SetLong("day", 1);
      ASSERT_TRUE(builder.AddRow(row).ok());
    }
    auto segment = builder.Build();
    ASSERT_TRUE(segment.ok());
    ASSERT_TRUE(
        leader->UploadSegment("keyed_OFFLINE", (*segment)->SerializeToBlob())
            .ok());
  }
}

PinotClusterOptions FastBrokerOptions(int servers,
                                      int64_t timeout_millis = 1500) {
  PinotClusterOptions options;
  options.num_servers = servers;
  options.broker_options.default_timeout_millis = timeout_millis;
  return options;
}

int64_t Count(const QueryResult& result) {
  return std::get<int64_t>(result.aggregates[0]);
}

// Acceptance scenario: one replica of *every* queried segment dies
// mid-query (each server fails its first request), and the broker still
// returns a complete result by retrying on the surviving replicas.
TEST(BrokerResilienceTest, RetriesInjectedFailureOnAnotherReplica) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  for (int i = 0; i < cluster.num_servers(); ++i) {
    cluster.server(i)->InjectQueryFailures(1);
  }

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 30);
  // The first wave failed somewhere; retries made the result whole.
  EXPECT_GT(result.trace.retries, 0);
  bool saw_failure = false;
  for (const auto& event : result.trace.events) {
    if (event.outcome.rfind("failed:", 0) == 0) saw_failure = true;
  }
  EXPECT_TRUE(saw_failure) << result.trace.ToString();

  // Faults consumed: the next query is clean.
  result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial);
  EXPECT_EQ(Count(result), 30);
  EXPECT_EQ(result.trace.retries, 0);
}

// Every scatter event reports why each of its segments landed on that
// server: "routing-table" on the first wave, "failover(<prior outcome>,
// candidates=<n>)" on retry waves.
TEST(BrokerResilienceTest, ScatterEventsCarryReplicaPickReasons) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  for (int i = 0; i < cluster.num_servers(); ++i) {
    cluster.server(i)->InjectQueryFailures(1);
  }

  auto result = cluster.Execute("TRACE SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_GT(result.trace.retries, 0);

  bool saw_failover_reason = false;
  for (const auto& event : result.trace.events) {
    ASSERT_EQ(event.pick_reasons.size(), event.segments.size())
        << result.trace.ToString();
    for (const auto& reason : event.pick_reasons) {
      if (event.attempt == 0) {
        EXPECT_EQ(reason, "routing-table") << result.trace.ToString();
      } else {
        EXPECT_EQ(reason.rfind("failover(", 0), 0u) << reason;
        EXPECT_NE(reason.find("candidates="), std::string::npos) << reason;
        saw_failover_reason = true;
      }
    }
  }
  EXPECT_TRUE(saw_failover_reason) << result.trace.ToString();
  // The failover reason names the prior outcome that triggered it.
  const std::string rendered = result.trace.ToString();
  EXPECT_NE(rendered.find("failover(failed:"), std::string::npos) << rendered;

  // The span tree mirrors the events: retry-wave call spans carry the wave
  // number and a per-segment pick label.
  ASSERT_TRUE(result.span.has_value());
  bool saw_retry_span = false;
  const TraceSpan* scatter = result.span->Find("scatter:keyed_OFFLINE");
  ASSERT_NE(scatter, nullptr) << result.span->ToString();
  for (const TraceSpan& call : scatter->children) {
    if (call.Annotation("wave", -1) > 0 &&
        call.LabelValue("outcome") == "ok") {
      saw_retry_span = true;
      bool has_pick_label = false;
      for (const auto& [key, value] : call.labels) {
        if (key.rfind("pick:", 0) == 0) {
          EXPECT_EQ(value.rfind("failover(", 0), 0u) << value;
          has_pick_label = true;
        }
      }
      EXPECT_TRUE(has_pick_label) << result.span->ToString();
    }
  }
  EXPECT_TRUE(saw_retry_span) << result.span->ToString();
}

// A partitioned server stays in the external view (routing is NOT
// rebuilt), so the broker must detect unreachability at scatter time and
// fail over in-flight.
TEST(BrokerResilienceTest, FailsOverFromPartitionedServerMidQuery) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  ASSERT_EQ(Count(cluster.Execute("SELECT count(*) FROM keyed")), 30);

  cluster.PartitionServer(1);
  for (int i = 0; i < 5; ++i) {
    auto result = cluster.Execute("SELECT count(*) FROM keyed");
    ASSERT_FALSE(result.partial) << result.error_message;
    EXPECT_EQ(Count(result), 30);
  }
  cluster.HealServer(1);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial);
  EXPECT_EQ(Count(result), 30);
}

// A server that answers too slowly is abandoned at its attempt deadline
// and its segments are re-scattered to a faster replica, all within the
// original query deadline.
TEST(BrokerResilienceTest, TimedOutSegmentsRetryOnFastReplica) {
  PinotCluster cluster(FastBrokerOptions(3, /*timeout_millis=*/900));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  // Longer than the whole query deadline: without failover this query can
  // only be partial.
  cluster.server(0)->InjectQueryDelay(1, 1200);

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 30);
  EXPECT_GE(result.trace.timeouts, 1) << result.trace.ToString();
  EXPECT_LT(result.latency_millis, 900);
}

// Dropped calls (response withheld past the deadline) look identical to
// timeouts and take the same failover path.
TEST(BrokerResilienceTest, DroppedCallsFailOver) {
  PinotCluster cluster(FastBrokerOptions(3, /*timeout_millis=*/900));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  cluster.server(2)->SetQueryDropFraction(1.0);

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 30);
  EXPECT_GE(result.trace.timeouts, 1) << result.trace.ToString();

  cluster.server(2)->SetQueryDropFraction(0);
}

// When every replica of a segment is gone the result is partial, and the
// trace names the failed servers and the segments each covered.
TEST(BrokerResilienceTest, NoLiveReplicaYieldsPartialWithTrace) {
  PinotCluster cluster(FastBrokerOptions(2));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/3,
                  /*rows_each=*/5);
  ASSERT_EQ(Count(cluster.Execute("SELECT count(*) FROM keyed")), 15);

  cluster.PartitionServer(0);
  cluster.PartitionServer(1);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_TRUE(result.partial);
  EXPECT_NE(result.error_message.find("no live replica"), std::string::npos)
      << result.error_message;

  // Every failed scatter call is in the trace with its server and the
  // segments it covered.
  bool named_server = false;
  for (const auto& event : result.trace.events) {
    if (event.outcome == "unreachable" && !event.segments.empty() &&
        (event.server == "server-0" || event.server == "server-1")) {
      named_server = true;
    }
  }
  EXPECT_TRUE(named_server) << result.trace.ToString();

  cluster.HealServer(0);
  cluster.HealServer(1);
  result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 15);
}

// Exhausted retries (every wave fails) also end partial instead of
// spinning past the deadline.
TEST(BrokerResilienceTest, ExhaustedRetriesReportPartial) {
  PinotCluster cluster(FastBrokerOptions(2));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/3,
                  /*rows_each=*/5);
  // More injected failures than retry waves on both replicas.
  cluster.server(0)->InjectQueryFailures(10);
  cluster.server(1)->InjectQueryFailures(10);

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_TRUE(result.partial);
  EXPECT_FALSE(result.trace.events.empty());
}

// Satellite regression: a corrupt time-boundary property used to escape as
// an uncaught std::stoll exception and crash the broker. It must fall back
// to the unfiltered hybrid plan (both physical tables, no time filter).
TEST(BrokerResilienceTest, CorruptTimeBoundaryFallsBackToUnfilteredPlan) {
  PinotCluster cluster(FastBrokerOptions(3));
  Controller* leader = cluster.leader_controller();
  StreamTopic* topic =
      cluster.streams()->GetOrCreateTopic("analytics-events", 1);

  TableConfig offline;
  offline.name = "analytics";
  offline.type = TableType::kOffline;
  offline.schema = AnalyticsSchema();
  offline.num_replicas = 1;
  ASSERT_TRUE(leader->AddTable(offline).ok());
  {
    SegmentBuildConfig build;
    build.table_name = "analytics_OFFLINE";
    build.segment_name = "offline0";
    auto segment = BuildAnalyticsSegment(build);  // Days 100..103, 12 rows.
    ASSERT_TRUE(
        leader->UploadSegment("analytics_OFFLINE", segment->SerializeToBlob())
            .ok());
  }

  TableConfig realtime;
  realtime.name = "analytics";
  realtime.type = TableType::kRealtime;
  realtime.schema = AnalyticsSchema();
  realtime.num_replicas = 1;
  realtime.realtime.topic = "analytics-events";
  realtime.realtime.num_partitions = 1;
  realtime.realtime.flush_threshold_rows = 1000;
  ASSERT_TRUE(leader->AddTable(realtime).ok());
  // Realtime rows strictly after the boundary, so the unfiltered fallback
  // plan cannot double count any row.
  for (int64_t day : {104, 105}) {
    test::AnalyticsRow row{"us", "chrome", 9, {}, 1000, 7, day};
    topic->Produce("9", ToRow(row));
  }
  cluster.ProcessRealtimeTicks(2);

  // Healthy boundary (103, the max offline day): the hybrid rewrite asks
  // offline for day <= 102 and realtime for day >= 103, so the 3 offline
  // day-103 rows fall outside both sides: 9 offline + 2 realtime.
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 11);

  // Every corrupt value falls back to the unfiltered plan: all 12 offline
  // rows plus both realtime rows, with no crash and no partial flag.
  const std::string boundary_path = "/TIMEBOUNDARY/analytics";
  for (const std::string corrupt :
       {"garbage", "", "123abc", "99999999999999999999999", "  42"}) {
    cluster.property_store()->Set(boundary_path, corrupt);
    result = cluster.Execute("SELECT count(*) FROM analytics");
    ASSERT_FALSE(result.partial)
        << "boundary \"" << corrupt << "\": " << result.error_message;
    EXPECT_EQ(Count(result), 14) << "boundary \"" << corrupt << "\"";
  }

  // Restoring a sane boundary restores the filtered plan.
  cluster.property_store()->Set(boundary_path, "103");
  result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE day <= 102");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 9);
}

// The trace on a healthy query records per-server calls with latency and
// the segments queried.
TEST(BrokerResilienceTest, HealthyQueryCarriesTrace) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/6,
                  /*rows_each=*/5);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_FALSE(result.trace.events.empty());
  size_t segments_covered = 0;
  for (const auto& event : result.trace.events) {
    EXPECT_EQ(event.outcome, "ok");
    EXPECT_EQ(event.attempt, 0);
    segments_covered += event.segments.size();
  }
  EXPECT_EQ(segments_covered, 6u);
  EXPECT_EQ(result.trace.retries, 0);
  EXPECT_EQ(result.trace.timeouts, 0);
}

// The cluster-wide metrics dump reflects activity on every layer: broker
// query accounting, server execution counters, and the injected faults
// that drive scatter retries.
TEST(BrokerResilienceTest, MetricsDumpReflectsQueryAndFaultActivity) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  MetricsRegistry* metrics = cluster.metrics();

  // Three clean queries; sum(hits) forces a real scan of every row.
  for (int i = 0; i < 3; ++i) {
    auto result = cluster.Execute("SELECT sum(hits) FROM keyed");
    ASSERT_FALSE(result.partial) << result.error_message;
  }
  EXPECT_EQ(metrics->CounterValue("broker_queries_total"), 3u);
  EXPECT_EQ(metrics->CounterValue("broker_scatter_retries_total"), 0u);
  EXPECT_EQ(metrics->CounterValue("broker_partial_results_total"), 0u);
  const Histogram* latency =
      metrics->FindHistogram("broker_query_latency_ms", {{"table", "keyed"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Count(), 3u);

  // Server-side: across all instances, each of the 3 queries covered all 6
  // segments exactly once and scanned all 30 rows.
  uint64_t server_queries = 0, segments_queried = 0, docs_scanned = 0;
  for (int i = 0; i < cluster.num_servers(); ++i) {
    const MetricLabels labels = {{"instance", cluster.server(i)->id()}};
    server_queries += metrics->CounterValue("server_queries_total", labels);
    segments_queried +=
        metrics->CounterValue("server_segments_queried_total", labels);
    docs_scanned +=
        metrics->CounterValue("server_docs_scanned_total", labels);
  }
  EXPECT_GE(server_queries, 3u);
  EXPECT_EQ(segments_queried, 3u * 6);
  EXPECT_EQ(docs_scanned, 3u * 30);

  // Inject one failure per server: the broker retries on other replicas
  // and both sides of that story land in the registry.
  for (int i = 0; i < cluster.num_servers(); ++i) {
    cluster.server(i)->InjectQueryFailures(1);
  }
  auto result = cluster.Execute("SELECT sum(hits) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_GT(result.trace.retries, 0);
  EXPECT_EQ(metrics->CounterValue("broker_scatter_retries_total"),
            static_cast<uint64_t>(result.trace.retries));
  uint64_t injected = 0;
  for (int i = 0; i < cluster.num_servers(); ++i) {
    injected += metrics->CounterValue(
        "server_injected_faults_total",
        {{"instance", cluster.server(i)->id()}, {"kind", "fail"}});
  }
  EXPECT_GT(injected, 0u);

  const std::string dump = cluster.MetricsDump();
  EXPECT_NE(dump.find("broker_queries_total 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("broker_query_latency_ms_count{table=\"keyed\"} 4"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("server_injected_faults_total"), std::string::npos);
}

}  // namespace
}  // namespace pinot
