#ifndef PINOT_QUERY_AGG_H_
#define PINOT_QUERY_AGG_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <unordered_set>

#include "data/value.h"
#include "query/query.h"

namespace pinot {

/// Exact distinct-value accumulator for DISTINCTCOUNT. The paper calls out
/// that preaggregation loses the ability to compute exact "distinct count"
/// (section 2); Pinot answers it from raw data, so this set holds actual
/// column values and merges across segments and servers.
class DistinctSet {
 public:
  void AddInt64(int64_t v) { ints_.insert(v); }
  void AddDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    doubles_.insert(bits);
  }
  void AddString(const std::string& v) { strings_.insert(v); }

  void Merge(const DistinctSet& other) {
    ints_.insert(other.ints_.begin(), other.ints_.end());
    doubles_.insert(other.doubles_.begin(), other.doubles_.end());
    strings_.insert(other.strings_.begin(), other.strings_.end());
  }

  int64_t size() const {
    return static_cast<int64_t>(ints_.size() + doubles_.size() +
                                strings_.size());
  }

 private:
  std::unordered_set<int64_t> ints_;
  std::unordered_set<uint64_t> doubles_;  // IEEE-754 bit patterns.
  std::unordered_set<std::string> strings_;
};

/// Mergeable accumulator for one aggregation function. Holds sum/min/max/
/// count so a single state type serves every AggregationType; the distinct
/// set is allocated lazily (only DISTINCTCOUNT pays for it).
struct AggState {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t count = 0;
  std::unique_ptr<DistinctSet> distinct;

  AggState() = default;
  AggState(AggState&&) = default;
  AggState& operator=(AggState&&) = default;

  void AddDouble(double v) {
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    ++count;
  }

  /// Adds a preaggregated slice (used by the star-tree execution path).
  void AddPreaggregated(double slice_sum, double slice_min, double slice_max,
                        int64_t slice_count) {
    sum += slice_sum;
    if (slice_min < min) min = slice_min;
    if (slice_max > max) max = slice_max;
    count += slice_count;
  }

  DistinctSet* MutableDistinct() {
    if (distinct == nullptr) distinct = std::make_unique<DistinctSet>();
    return distinct.get();
  }

  void Merge(AggState&& other) {
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    count += other.count;
    if (other.distinct != nullptr) {
      MutableDistinct()->Merge(*other.distinct);
    }
  }
};

/// Converts a merged state into the final result value for `type`.
Value FinalizeAgg(AggregationType type, const AggState& state);

/// Sort key used to order group-by rows (descending TOP n): the numeric
/// magnitude of the finalized aggregate.
double AggSortValue(AggregationType type, const AggState& state);

}  // namespace pinot

#endif  // PINOT_QUERY_AGG_H_
