file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_routing_metric.dir/bench_ablation_routing_metric.cc.o"
  "CMakeFiles/bench_ablation_routing_metric.dir/bench_ablation_routing_metric.cc.o.d"
  "bench_ablation_routing_metric"
  "bench_ablation_routing_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_routing_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
