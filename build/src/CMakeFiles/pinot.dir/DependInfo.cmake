
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitmap/roaring.cc" "src/CMakeFiles/pinot.dir/bitmap/roaring.cc.o" "gcc" "src/CMakeFiles/pinot.dir/bitmap/roaring.cc.o.d"
  "/root/repo/src/cluster/broker.cc" "src/CMakeFiles/pinot.dir/cluster/broker.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/broker.cc.o.d"
  "/root/repo/src/cluster/cluster_context.cc" "src/CMakeFiles/pinot.dir/cluster/cluster_context.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/cluster_context.cc.o.d"
  "/root/repo/src/cluster/cluster_manager.cc" "src/CMakeFiles/pinot.dir/cluster/cluster_manager.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/cluster_manager.cc.o.d"
  "/root/repo/src/cluster/controller.cc" "src/CMakeFiles/pinot.dir/cluster/controller.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/controller.cc.o.d"
  "/root/repo/src/cluster/index_advisor.cc" "src/CMakeFiles/pinot.dir/cluster/index_advisor.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/index_advisor.cc.o.d"
  "/root/repo/src/cluster/minion.cc" "src/CMakeFiles/pinot.dir/cluster/minion.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/minion.cc.o.d"
  "/root/repo/src/cluster/object_store.cc" "src/CMakeFiles/pinot.dir/cluster/object_store.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/object_store.cc.o.d"
  "/root/repo/src/cluster/pinot_cluster.cc" "src/CMakeFiles/pinot.dir/cluster/pinot_cluster.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/pinot_cluster.cc.o.d"
  "/root/repo/src/cluster/property_store.cc" "src/CMakeFiles/pinot.dir/cluster/property_store.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/property_store.cc.o.d"
  "/root/repo/src/cluster/server.cc" "src/CMakeFiles/pinot.dir/cluster/server.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/server.cc.o.d"
  "/root/repo/src/cluster/table_config.cc" "src/CMakeFiles/pinot.dir/cluster/table_config.cc.o" "gcc" "src/CMakeFiles/pinot.dir/cluster/table_config.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/pinot.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/pinot.dir/common/clock.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/pinot.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/pinot.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/pinot.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/pinot.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/pinot.dir/common/random.cc.o" "gcc" "src/CMakeFiles/pinot.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pinot.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pinot.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/pinot.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/pinot.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/data/data_type.cc" "src/CMakeFiles/pinot.dir/data/data_type.cc.o" "gcc" "src/CMakeFiles/pinot.dir/data/data_type.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/pinot.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/pinot.dir/data/schema.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/pinot.dir/data/value.cc.o" "gcc" "src/CMakeFiles/pinot.dir/data/value.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/pinot.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/pinot.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/query/agg.cc" "src/CMakeFiles/pinot.dir/query/agg.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/agg.cc.o.d"
  "/root/repo/src/query/doc_id_set.cc" "src/CMakeFiles/pinot.dir/query/doc_id_set.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/doc_id_set.cc.o.d"
  "/root/repo/src/query/filter_evaluator.cc" "src/CMakeFiles/pinot.dir/query/filter_evaluator.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/filter_evaluator.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/pinot.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/pinot.dir/query/query.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/query.cc.o.d"
  "/root/repo/src/query/result.cc" "src/CMakeFiles/pinot.dir/query/result.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/result.cc.o.d"
  "/root/repo/src/query/segment_executor.cc" "src/CMakeFiles/pinot.dir/query/segment_executor.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/segment_executor.cc.o.d"
  "/root/repo/src/query/table_executor.cc" "src/CMakeFiles/pinot.dir/query/table_executor.cc.o" "gcc" "src/CMakeFiles/pinot.dir/query/table_executor.cc.o.d"
  "/root/repo/src/realtime/completion.cc" "src/CMakeFiles/pinot.dir/realtime/completion.cc.o" "gcc" "src/CMakeFiles/pinot.dir/realtime/completion.cc.o.d"
  "/root/repo/src/realtime/mutable_segment.cc" "src/CMakeFiles/pinot.dir/realtime/mutable_segment.cc.o" "gcc" "src/CMakeFiles/pinot.dir/realtime/mutable_segment.cc.o.d"
  "/root/repo/src/routing/routing.cc" "src/CMakeFiles/pinot.dir/routing/routing.cc.o" "gcc" "src/CMakeFiles/pinot.dir/routing/routing.cc.o.d"
  "/root/repo/src/segment/dictionary.cc" "src/CMakeFiles/pinot.dir/segment/dictionary.cc.o" "gcc" "src/CMakeFiles/pinot.dir/segment/dictionary.cc.o.d"
  "/root/repo/src/segment/forward_index.cc" "src/CMakeFiles/pinot.dir/segment/forward_index.cc.o" "gcc" "src/CMakeFiles/pinot.dir/segment/forward_index.cc.o.d"
  "/root/repo/src/segment/row_extract.cc" "src/CMakeFiles/pinot.dir/segment/row_extract.cc.o" "gcc" "src/CMakeFiles/pinot.dir/segment/row_extract.cc.o.d"
  "/root/repo/src/segment/segment.cc" "src/CMakeFiles/pinot.dir/segment/segment.cc.o" "gcc" "src/CMakeFiles/pinot.dir/segment/segment.cc.o.d"
  "/root/repo/src/segment/segment_builder.cc" "src/CMakeFiles/pinot.dir/segment/segment_builder.cc.o" "gcc" "src/CMakeFiles/pinot.dir/segment/segment_builder.cc.o.d"
  "/root/repo/src/segment/segment_store.cc" "src/CMakeFiles/pinot.dir/segment/segment_store.cc.o" "gcc" "src/CMakeFiles/pinot.dir/segment/segment_store.cc.o.d"
  "/root/repo/src/startree/star_tree.cc" "src/CMakeFiles/pinot.dir/startree/star_tree.cc.o" "gcc" "src/CMakeFiles/pinot.dir/startree/star_tree.cc.o.d"
  "/root/repo/src/stream/stream.cc" "src/CMakeFiles/pinot.dir/stream/stream.cc.o" "gcc" "src/CMakeFiles/pinot.dir/stream/stream.cc.o.d"
  "/root/repo/src/tenant/token_bucket.cc" "src/CMakeFiles/pinot.dir/tenant/token_bucket.cc.o" "gcc" "src/CMakeFiles/pinot.dir/tenant/token_bucket.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/CMakeFiles/pinot.dir/workload/workloads.cc.o" "gcc" "src/CMakeFiles/pinot.dir/workload/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
