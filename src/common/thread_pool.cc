#include "common/thread_pool.h"

#include <atomic>
#include <cassert>

namespace pinot {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads > 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& task) {
  if (count <= 0) return;
  // Chunked dispatch: one queued task per worker, each pulling indexes off
  // a shared atomic counter. Queue and lock traffic is O(workers) instead
  // of O(count), which matters for many-segment fan-out queries. The
  // blocking waits below keep the stack-captured state alive.
  const int num_tasks = std::min(count, num_threads());
  std::atomic<int> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(num_tasks);
  for (int t = 0; t < num_tasks; ++t) {
    futures.push_back(Submit([&task, &next, count] {
      for (int i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        task(i);
      }
    }));
  }
  for (auto& future : futures) future.wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace pinot
