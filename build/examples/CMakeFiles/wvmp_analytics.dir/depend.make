# Empty dependencies file for wvmp_analytics.
# This may be replaced when dependencies are built.
