#include "data/data_type.h"

namespace pinot {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt:
      return "INT";
    case DataType::kLong:
      return "LONG";
    case DataType::kFloat:
      return "FLOAT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kBoolean:
      return "BOOLEAN";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool IsIntegralType(DataType type) {
  return type == DataType::kInt || type == DataType::kLong ||
         type == DataType::kBoolean;
}

bool IsFloatingType(DataType type) {
  return type == DataType::kFloat || type == DataType::kDouble;
}

const char* FieldRoleToString(FieldRole role) {
  switch (role) {
    case FieldRole::kDimension:
      return "DIMENSION";
    case FieldRole::kMetric:
      return "METRIC";
    case FieldRole::kTime:
      return "TIME";
  }
  return "UNKNOWN";
}

}  // namespace pinot
