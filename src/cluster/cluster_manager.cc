#include "cluster/cluster_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace pinot {

const char* SegmentStateToString(SegmentState state) {
  switch (state) {
    case SegmentState::kOffline:
      return "OFFLINE";
    case SegmentState::kConsuming:
      return "CONSUMING";
    case SegmentState::kOnline:
      return "ONLINE";
    case SegmentState::kDropped:
      return "DROPPED";
  }
  return "?";
}

void ClusterManager::RegisterInstance(const std::string& instance,
                                      const std::vector<std::string>& tags,
                                      StateTransitionHandler* handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instance& info = instances_[instance];
  info.tags = tags;
  info.handler = handler;
  info.alive = true;
  info.reachable = true;
}

void ClusterManager::SetInstanceReachable(const std::string& instance,
                                          bool reachable) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = instances_.find(instance);
  if (it != instances_.end()) it->second.reachable = reachable;
}

bool ClusterManager::IsInstanceReachable(const std::string& instance) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = instances_.find(instance);
  return it != instances_.end() && it->second.alive && it->second.reachable;
}

bool ClusterManager::IsInstanceAlive(const std::string& instance) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = instances_.find(instance);
  return it != instances_.end() && it->second.alive;
}

std::vector<std::string> ClusterManager::GetInstancesWithTag(
    const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, info] : instances_) {
    if (std::find(info.tags.begin(), info.tags.end(), tag) !=
        info.tags.end()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<std::string> ClusterManager::GetAliveInstancesWithTag(
    const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, info] : instances_) {
    if (info.alive && std::find(info.tags.begin(), info.tags.end(), tag) !=
                          info.tags.end()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<SegmentState> ClusterManager::TransitionPath(SegmentState from,
                                                         SegmentState to) {
  if (from == to) return {};
  // Legal edges (Figure 3): OFFLINE -> {ONLINE, CONSUMING, DROPPED},
  // CONSUMING -> {ONLINE, OFFLINE, DROPPED}, ONLINE -> {OFFLINE, DROPPED}.
  switch (from) {
    case SegmentState::kOffline:
      return {to};  // All targets reachable directly.
    case SegmentState::kConsuming:
      if (to == SegmentState::kOnline || to == SegmentState::kOffline ||
          to == SegmentState::kDropped) {
        return {to};
      }
      return {to};
    case SegmentState::kOnline:
      if (to == SegmentState::kOffline || to == SegmentState::kDropped) {
        return {to};
      }
      // ONLINE -> CONSUMING must route through OFFLINE.
      return {SegmentState::kOffline, to};
    case SegmentState::kDropped:
      return {SegmentState::kOffline, to};
  }
  return {to};
}

void ClusterManager::PlanTransitionsLocked(
    const std::string& table, const std::string& segment,
    std::vector<PendingTransition>* plan) {
  const InstanceStates& ideal = ideal_state_[table][segment];
  InstanceStates& external = external_view_[table][segment];

  // Instances present in the external view but absent (or dropped) in the
  // ideal state must drop the segment.
  for (const auto& [instance, state] : external) {
    auto it = ideal.find(instance);
    if (it == ideal.end()) {
      auto inst = instances_.find(instance);
      if (inst != instances_.end() && inst->second.alive) {
        plan->push_back(
            {table, segment, instance, state, SegmentState::kDropped});
      }
    }
  }
  // Converge each ideal replica.
  for (const auto& [instance, desired] : ideal) {
    auto inst = instances_.find(instance);
    if (inst == instances_.end() || !inst->second.alive) continue;
    auto cur = external.find(instance);
    const SegmentState current =
        cur == external.end() ? SegmentState::kOffline : cur->second;
    if (current == desired) continue;
    SegmentState hop_from = current;
    for (SegmentState hop : TransitionPath(current, desired)) {
      plan->push_back({table, segment, instance, hop_from, hop});
      hop_from = hop;
    }
  }
}

void ClusterManager::ExecuteTransitions(std::vector<PendingTransition> plan) {
  for (const auto& t : plan) {
    StateTransitionHandler* handler = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = instances_.find(t.instance);
      if (it == instances_.end() || !it->second.alive) continue;
      handler = it->second.handler;
    }
    Status st = Status::OK();
    if (handler != nullptr) {
      st = handler->OnSegmentStateTransition(t.table, t.segment, t.from,
                                             t.to);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      InstanceStates& states = external_view_[t.table][t.segment];
      if (st.ok()) {
        if (t.to == SegmentState::kDropped) {
          states.erase(t.instance);
          if (states.empty()) external_view_[t.table].erase(t.segment);
        } else {
          states[t.instance] = t.to;
        }
      } else {
        // Helix would move the replica to ERROR; we log and leave the
        // previous state out of the view so brokers avoid the replica.
        PINOT_LOG_WARN << "transition failed on " << t.instance << " for "
                       << t.table << "/" << t.segment << ": "
                       << st.ToString();
        states.erase(t.instance);
      }
    }
    NotifyViewWatchers(t.table);
  }
}

void ClusterManager::SetSegmentIdealState(const std::string& table,
                                          const std::string& segment,
                                          const InstanceStates& desired) {
  std::vector<PendingTransition> plan;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ideal_state_[table][segment] = desired;
    PlanTransitionsLocked(table, segment, &plan);
  }
  ExecuteTransitions(std::move(plan));
}

void ClusterManager::RemoveSegment(const std::string& table,
                                   const std::string& segment) {
  std::vector<PendingTransition> plan;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto table_it = ideal_state_.find(table);
    if (table_it != ideal_state_.end()) {
      table_it->second.erase(segment);
    }
    auto view_it = external_view_.find(table);
    if (view_it != external_view_.end()) {
      auto seg_it = view_it->second.find(segment);
      if (seg_it != view_it->second.end()) {
        for (const auto& [instance, state] : seg_it->second) {
          auto inst = instances_.find(instance);
          if (inst != instances_.end() && inst->second.alive) {
            plan.push_back(
                {table, segment, instance, state, SegmentState::kDropped});
          }
        }
      }
    }
  }
  ExecuteTransitions(std::move(plan));
}

TableView ClusterManager::GetIdealState(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ideal_state_.find(table);
  return it == ideal_state_.end() ? TableView{} : it->second;
}

TableView ClusterManager::GetExternalView(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = external_view_.find(table);
  return it == external_view_.end() ? TableView{} : it->second;
}

std::vector<std::string> ClusterManager::GetTables() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [table, view] : ideal_state_) out.push_back(table);
  return out;
}

int ClusterManager::WatchExternalView(
    std::function<void(const std::string&)> cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int handle = next_watch_handle_++;
  view_watchers_.emplace_back(handle, std::move(cb));
  return handle;
}

void ClusterManager::UnwatchExternalView(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = view_watchers_.begin(); it != view_watchers_.end(); ++it) {
    if (it->first == handle) {
      view_watchers_.erase(it);
      return;
    }
  }
}

void ClusterManager::NotifyViewWatchers(const std::string& table) {
  std::vector<std::function<void(const std::string&)>> watchers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [handle, cb] : view_watchers_) watchers.push_back(cb);
  }
  for (const auto& cb : watchers) cb(table);
}

void ClusterManager::SetInstanceAlive(const std::string& instance,
                                      bool alive) {
  std::vector<PendingTransition> plan;
  std::vector<std::string> touched_tables;
  std::vector<std::function<void()>> leadership_callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instances_.find(instance);
    if (it == instances_.end()) return;
    if (it->second.alive == alive) return;
    it->second.alive = alive;
    if (!alive) {
      // Remove the instance from every external view; its local state is
      // considered lost (stateless instances, section 3.4).
      for (auto& [table, view] : external_view_) {
        bool changed = false;
        for (auto seg_it = view.begin(); seg_it != view.end();) {
          changed |= seg_it->second.erase(instance) > 0;
          if (seg_it->second.empty()) {
            seg_it = view.erase(seg_it);
          } else {
            ++seg_it;
          }
        }
        if (changed) touched_tables.push_back(table);
      }
      // Controller death triggers re-election.
      if (leader_ == instance) ElectLeaderLocked(&leadership_callbacks);
    } else {
      // Replay the ideal state onto the recovered (blank) instance.
      for (const auto& [table, view] : ideal_state_) {
        for (const auto& [segment, states] : view) {
          if (states.count(instance) > 0) {
            PlanTransitionsLocked(table, segment, &plan);
          }
        }
      }
      // Controllers rejoin the election queue.
      for (const auto& controller : controllers_) {
        if (controller.id == instance && leader_.empty()) {
          ElectLeaderLocked(&leadership_callbacks);
        }
      }
    }
  }
  for (const auto& cb : leadership_callbacks) cb();
  for (const auto& table : touched_tables) NotifyViewWatchers(table);
  ExecuteTransitions(std::move(plan));
}

void ClusterManager::ElectLeaderLocked(
    std::vector<std::function<void()>>* callbacks) {
  const std::string old_leader = leader_;
  leader_.clear();
  for (const auto& controller : controllers_) {
    auto it = instances_.find(controller.id);
    const bool alive = it == instances_.end() ? true : it->second.alive;
    if (alive) {
      leader_ = controller.id;
      break;
    }
  }
  for (const auto& controller : controllers_) {
    if (controller.id == old_leader && old_leader != leader_ &&
        controller.on_leadership) {
      auto cb = controller.on_leadership;
      callbacks->push_back([cb] { cb(false); });
    }
    if (controller.id == leader_ && old_leader != leader_ &&
        controller.on_leadership) {
      auto cb = controller.on_leadership;
      callbacks->push_back([cb] { cb(true); });
    }
  }
}

Status ClusterManager::SendUserMessage(const std::string& instance,
                                       const std::string& type,
                                       const std::string& payload) {
  StateTransitionHandler* handler = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instances_.find(instance);
    if (it == instances_.end()) {
      return Status::NotFound("no such instance: " + instance);
    }
    if (!it->second.alive) {
      return Status::Unavailable("instance is down: " + instance);
    }
    handler = it->second.handler;
  }
  if (handler == nullptr) {
    return Status::NotImplemented("instance has no handler: " + instance);
  }
  return handler->OnUserMessage(type, payload);
}

void ClusterManager::BroadcastUserMessage(const std::string& tag,
                                          const std::string& type,
                                          const std::string& payload) {
  for (const auto& instance : GetAliveInstancesWithTag(tag)) {
    Status st = SendUserMessage(instance, type, payload);
    if (!st.ok() && st.code() != StatusCode::kNotImplemented) {
      PINOT_LOG_WARN << "user message " << type << " failed on " << instance
                     << ": " << st.ToString();
    }
  }
}

void ClusterManager::RegisterController(const std::string& controller,
                                        std::function<void(bool)> on_leadership) {
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    controllers_.push_back({controller, std::move(on_leadership)});
    if (instances_.count(controller) == 0) {
      instances_[controller] = Instance{{"controller"}, nullptr, true};
    }
    if (leader_.empty()) ElectLeaderLocked(&callbacks);
  }
  for (const auto& cb : callbacks) cb();
}

void ClusterManager::DeregisterController(const std::string& controller) {
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = controllers_.begin(); it != controllers_.end(); ++it) {
      if (it->id == controller) {
        controllers_.erase(it);
        break;
      }
    }
    if (leader_ == controller) ElectLeaderLocked(&callbacks);
  }
  for (const auto& cb : callbacks) cb();
}

std::string ClusterManager::leader() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leader_;
}

}  // namespace pinot
