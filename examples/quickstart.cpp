// Quickstart: build an immutable segment from rows, run PQL queries against
// it, and inspect the execution statistics. This is the smallest end-to-end
// use of the library — no cluster, just the columnar engine.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "query/parser.h"
#include "query/result.h"
#include "query/table_executor.h"
#include "segment/segment_builder.h"

using namespace pinot;

int main() {
  // 1. Define a schema: dimensions, metrics, and a time column.
  auto schema = Schema::Make({
      FieldSpec::Dimension("country", DataType::kString),
      FieldSpec::Dimension("browser", DataType::kString),
      FieldSpec::Metric("impressions", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  if (!schema.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  // 2. Build a segment. Sorting on `country` gives range-based filtering
  // on that column; an inverted index accelerates `browser` filters.
  SegmentBuildConfig config;
  config.table_name = "pageviews";
  config.segment_name = "pageviews_0";
  config.sort_columns = {"country"};
  config.inverted_index_columns = {"browser"};

  SegmentBuilder builder(*schema, config);
  struct Record {
    const char* country;
    const char* browser;
    int64_t impressions;
    int64_t day;
  };
  const Record records[] = {
      {"us", "firefox", 120, 100}, {"us", "chrome", 300, 100},
      {"ca", "firefox", 80, 100},  {"de", "safari", 45, 101},
      {"us", "safari", 90, 101},   {"ca", "chrome", 60, 101},
      {"fr", "firefox", 30, 102},  {"us", "chrome", 210, 102},
      {"de", "chrome", 75, 102},   {"us", "firefox", 150, 103},
  };
  for (const auto& r : records) {
    Row row;
    row.SetString("country", r.country)
        .SetString("browser", r.browser)
        .SetLong("impressions", r.impressions)
        .SetLong("day", r.day);
    Status st = builder.AddRow(row);
    if (!st.ok()) {
      std::fprintf(stderr, "add row: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto segment = builder.Build();
  if (!segment.ok()) {
    std::fprintf(stderr, "build: %s\n", segment.status().ToString().c_str());
    return 1;
  }
  std::printf("built segment '%s' with %u docs\n\n",
              (*segment)->metadata().segment_name.c_str(),
              (*segment)->num_docs());

  // 3. Run PQL queries.
  const char* queries[] = {
      "SELECT count(*) FROM pageviews",
      "SELECT sum(impressions) FROM pageviews WHERE country = 'us'",
      "SELECT sum(impressions) FROM pageviews WHERE browser = 'firefox' OR "
      "browser = 'safari'",
      "SELECT sum(impressions) FROM pageviews GROUP BY country TOP 3",
      "SELECT min(impressions), max(impressions), avg(impressions) FROM "
      "pageviews WHERE day BETWEEN 101 AND 102",
      "SELECT country, browser, impressions FROM pageviews ORDER BY "
      "impressions DESC LIMIT 3",
  };
  std::vector<std::shared_ptr<SegmentInterface>> segments = {*segment};
  for (const char* pql : queries) {
    auto query = ParsePql(pql);
    if (!query.ok()) {
      std::fprintf(stderr, "parse: %s\n", query.status().ToString().c_str());
      return 1;
    }
    PartialResult partial = ExecuteQueryOnSegments(segments, *query);
    QueryResult result = ReduceToFinalResult(*query, std::move(partial));
    std::printf("> %s\n%s\n\n", pql, result.ToString().c_str());
  }
  return 0;
}
