#ifndef PINOT_QUERY_FILTER_EVALUATOR_H_
#define PINOT_QUERY_FILTER_EVALUATOR_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "query/doc_id_set.h"
#include "query/query.h"
#include "query/result.h"
#include "segment/segment.h"
#include "trace/trace.h"

namespace pinot {

/// A predicate translated into the dictionary-id domain of one segment's
/// column. Immutable dictionaries assign ids in value order, so range
/// predicates become contiguous id intervals.
struct DictIdMatch {
  bool match_all = false;
  bool match_none = false;
  // When negated, `ids` lists the *excluded* ids.
  bool negated = false;
  // Contiguous inclusive interval [lo, hi]; only set when !negated.
  bool contiguous = false;
  int lo = 0;
  int hi = -1;
  // Sorted matching (or excluded) ids when not contiguous.
  std::vector<uint32_t> ids;

  bool Matches(uint32_t dict_id) const;
};

/// Translates `pred` against `dict` (handles sorted and unsorted
/// dictionaries; the latter scan the dictionary for range predicates).
DictIdMatch MatchDictIds(const Dictionary& dict, const Predicate& pred);

/// Value-level predicate test, used for columns that exist in the schema
/// but not in a given segment (pre-schema-evolution segments): the column
/// is virtually filled with the schema default.
bool PredicateMatchesValue(const Predicate& pred, const Value& value);

/// Evaluates a filter tree against one segment, producing the matching doc
/// ids. Implements the paper's physical-operator selection and ordering
/// (sections 3.3.4 and 4.2): per-leaf, the evaluator estimates result
/// cardinality from column statistics (dictionary cardinality, per-value
/// posting-list cardinalities, segment doc count) and picks the cheaper of
/// sorted-range, inverted-bitmap, or domain-restricted scan execution; AND
/// nodes evaluate children in ascending estimated cost and pass the
/// accumulated doc-id set to subsequent scan operators so they only
/// evaluate part of the column.
class FilterEvaluator {
 public:
  /// `stats` may be null. The evaluator borrows `segment`.
  FilterEvaluator(const SegmentInterface& segment, ExecutionStats* stats)
      : segment_(segment), stats_(stats) {}

  Result<DocIdSet> Evaluate(const std::optional<FilterNode>& filter);

  /// Evaluates `filter` restricted to `base_domain` (null = unrestricted).
  /// Every eval path returns a subset of the domain it was handed, so the
  /// result never includes a doc outside `base_domain` — upsert execution
  /// passes the segment's valid-docs snapshot here and superseded rows can
  /// never surface, whatever physical operators the planner picks.
  Result<DocIdSet> Evaluate(const std::optional<FilterNode>& filter,
                            const DocIdSet* base_domain);

  /// Physical operator classes for one predicate leaf.
  enum class LeafStrategy { kConstant, kSortedRange, kInverted, kScan };

  /// How leaves choose between index and scan execution.
  ///  - kCostBased (default): pick the cheaper of bitmap-intersect and
  ///    domain-restricted scan from estimated cardinalities.
  ///  - kPreferIndex: legacy behavior — use an index whenever one exists.
  ///  - kForceScan: always scan (except constant leaves). Used by the
  ///    equivalence fuzz test and the ablation bench.
  enum class PlannerMode { kCostBased, kPreferIndex, kForceScan };

  /// One leaf's plan: the chosen operator plus the estimates that drove
  /// the choice (public for tests and the planner ablation bench).
  struct LeafPlan {
    LeafStrategy strategy = LeafStrategy::kConstant;
    // Predicted result cardinality within the domain.
    uint64_t est_rows = 0;
    // Estimated cost of the inverted-bitmap path; 0 when unavailable.
    uint64_t bitmap_cost = 0;
    // Estimated cost of the domain-restricted scan path.
    uint64_t scan_cost = 0;
  };

  /// Plans a predicate leaf against a domain of `domain_docs` candidate
  /// documents (pass segment_.num_docs() when unrestricted).
  LeafPlan PlanLeaf(const Predicate& pred, uint64_t domain_docs) const;

  /// Strategy a leaf would use when evaluated over the whole segment.
  LeafStrategy ClassifyLeaf(const Predicate& pred) const {
    return PlanLeaf(pred, segment_.num_docs()).strategy;
  }

  void set_planner_mode(PlannerMode mode) { planner_mode_ = mode; }

  /// Disables cost-based reordering of AND children (children evaluate in
  /// query order). Used by the predicate-order ablation bench.
  void set_reorder_predicates(bool reorder) { reorder_predicates_ = reorder; }

  /// When set, each evaluated leaf records on the span: the chosen operator
  /// as label `op:<column>` = constant|sorted-range|inverted|scan, the cost
  /// comparison as label `cost:<column>` = `bitmap=<B>,scan=<S>` (when both
  /// paths were costed), and annotations `est_rows:<column>` (predicted)
  /// and `rows:<column>` (actual result cardinality). Null (the default)
  /// keeps the hot path free of trace work.
  void set_trace_span(TraceSpan* span) { trace_span_ = span; }

  /// Estimated cost of evaluating `node` over an unrestricted domain:
  /// leaves cost their chosen physical operator; OR nodes take the
  /// minimum over children (a cheap child can short-circuit an
  /// all-matching union); AND nodes sum children, capped at the
  /// full-scan cost (the accumulated domain bounds later children).
  /// Public for the evaluation-order regression tests.
  int64_t EstimateCost(const FilterNode& node) const;

 private:
  Result<DocIdSet> EvalNode(const FilterNode& node, const DocIdSet* domain);
  Result<DocIdSet> EvalAnd(const std::vector<FilterNode>& children,
                           const DocIdSet* domain);
  Result<DocIdSet> EvalOr(const std::vector<FilterNode>& children,
                          const DocIdSet* domain);
  Result<DocIdSet> EvalLeaf(const Predicate& pred, const DocIdSet* domain);

  // Plans a leaf whose column and dict-id translation are already known.
  LeafPlan PlanMatchedLeaf(const ColumnReader& column,
                           const DictIdMatch& match,
                           uint64_t domain_docs) const;

  DocIdSet ScanColumn(const ColumnReader& column, const DictIdMatch& match,
                      const DocIdSet& domain);

  const SegmentInterface& segment_;
  ExecutionStats* stats_;
  PlannerMode planner_mode_ = PlannerMode::kCostBased;
  bool reorder_predicates_ = true;
  TraceSpan* trace_span_ = nullptr;
};

/// "constant" / "sorted-range" / "inverted" / "scan".
const char* LeafStrategyToString(FilterEvaluator::LeafStrategy strategy);

}  // namespace pinot

#endif  // PINOT_QUERY_FILTER_EVALUATOR_H_
