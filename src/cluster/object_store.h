#ifndef PINOT_CLUSTER_OBJECT_STORE_H_
#define PINOT_CLUSTER_OBJECT_STORE_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"

namespace pinot {

/// Durable blob store for segment data (paper sections 3.2, 3.4: "all
/// persistent data is stored in the durable object storage system ...
/// local storage is only used as a cache"). At LinkedIn this is an NFS
/// mount or Azure Disk; here it is an in-memory map with the same
/// semantics: whole-object put/get and atomic replace (segment data is
/// immutable, but "segments themselves can be replaced with a newer
/// version").
class ObjectStore {
 public:
  void Put(const std::string& key, std::string blob);

  Result<std::string> Get(const std::string& key) const;

  bool Exists(const std::string& key) const;

  Status Delete(const std::string& key);

  /// Total bytes stored under keys starting with `prefix` (used by the
  /// controller's table quota check, section 3.3.5).
  uint64_t BytesUnderPrefix(const std::string& prefix) const;

  size_t object_count() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::string> blobs_;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_OBJECT_STORE_H_
