#include "routing/routing.h"

#include <gtest/gtest.h>

#include <set>

namespace pinot {
namespace {

// segment -> replicas fixture: `num_segments` segments spread over
// `num_servers` servers with `replicas` replicas each (round-robin).
std::map<std::string, std::vector<std::string>> MakeReplicaMap(
    int num_segments, int num_servers, int replicas) {
  std::map<std::string, std::vector<std::string>> out;
  for (int s = 0; s < num_segments; ++s) {
    std::vector<std::string> servers;
    for (int r = 0; r < replicas; ++r) {
      servers.push_back("server-" + std::to_string((s + r) % num_servers));
    }
    out["segment-" + std::to_string(s)] = std::move(servers);
  }
  return out;
}

// Every segment appears exactly once across the routing table, on one of
// its replicas.
void CheckCoverage(
    const RoutingTable& table,
    const std::map<std::string, std::vector<std::string>>& replicas) {
  std::set<std::string> seen;
  for (const auto& [server, segments] : table.server_segments) {
    for (const auto& segment : segments) {
      EXPECT_TRUE(seen.insert(segment).second)
          << segment << " routed twice";
      const auto& candidates = replicas.at(segment);
      EXPECT_NE(std::find(candidates.begin(), candidates.end(), server),
                candidates.end())
          << segment << " routed to non-replica " << server;
    }
  }
  EXPECT_EQ(seen.size(), replicas.size()) << "not all segments covered";
}

TEST(RoutingTest, QueryableReplicasFiltersStates) {
  TableView view;
  view["s1"] = {{"a", SegmentState::kOnline}, {"b", SegmentState::kOffline}};
  view["s2"] = {{"a", SegmentState::kConsuming}};
  view["s3"] = {{"b", SegmentState::kOffline}};
  auto replicas = QueryableReplicas(view);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas["s1"], (std::vector<std::string>{"a"}));
  EXPECT_EQ(replicas["s2"], (std::vector<std::string>{"a"}));
}

TEST(RoutingTest, BalancedCoversEverySegmentOnce) {
  Random rng(1);
  auto replicas = MakeReplicaMap(100, 10, 3);
  RoutingTable table = BuildBalancedRoutingTable(replicas, &rng);
  CheckCoverage(table, replicas);
  EXPECT_EQ(table.total_segments(), 100u);
  // Balanced: every server gets roughly 10 segments.
  for (const auto& [server, segments] : table.server_segments) {
    EXPECT_GE(segments.size(), 5u);
    EXPECT_LE(segments.size(), 15u);
  }
}

TEST(RoutingTest, GenerateRoutingTableRespectsTargetServerCount) {
  Random rng(7);
  auto replicas = MakeReplicaMap(200, 20, 3);
  for (int target : {4, 8, 12}) {
    RoutingTable table = GenerateRoutingTable(replicas, target, &rng);
    CheckCoverage(table, replicas);
    // Algorithm 1 may add servers beyond T to cover orphans, but should
    // stay near the target, far below the full cluster.
    EXPECT_GE(table.num_servers(), std::min(target, 20));
    EXPECT_LE(table.num_servers(), 20);
  }
}

TEST(RoutingTest, GenerateUsesAllServersWhenFewerThanTarget) {
  Random rng(7);
  auto replicas = MakeReplicaMap(30, 3, 2);
  RoutingTable table = GenerateRoutingTable(replicas, 10, &rng);
  CheckCoverage(table, replicas);
  EXPECT_EQ(table.num_servers(), 3);
}

TEST(RoutingTest, MetricIsVarianceOfLoad) {
  RoutingTable even;
  even.server_segments["a"] = {"s1", "s2"};
  even.server_segments["b"] = {"s3", "s4"};
  EXPECT_DOUBLE_EQ(RoutingTableMetric(even), 0.0);

  RoutingTable skewed;
  skewed.server_segments["a"] = {"s1", "s2", "s3"};
  skewed.server_segments["b"] = {"s4"};
  EXPECT_DOUBLE_EQ(RoutingTableMetric(skewed), 1.0);  // mean 2, deviations ±1.
}

TEST(RoutingTest, Algorithm2KeepsLowestVarianceTables) {
  Random rng(42);
  auto replicas = MakeReplicaMap(300, 24, 3);
  GeneratedRoutingOptions options;
  options.target_server_count = 6;
  options.tables_to_generate = 200;
  options.tables_to_keep = 10;
  auto tables = GenerateRoutingTables(replicas, options, &rng);
  ASSERT_EQ(tables.size(), 10u);
  for (const auto& table : tables) CheckCoverage(table, replicas);
  // Kept tables are sorted best-first and at least as good as a fresh
  // random single candidate on average.
  for (size_t i = 1; i < tables.size(); ++i) {
    EXPECT_LE(RoutingTableMetric(tables[i - 1]),
              RoutingTableMetric(tables[i]) + 1e-9);
  }
  double fresh = 0;
  for (int i = 0; i < 20; ++i) {
    fresh += RoutingTableMetric(GenerateRoutingTable(replicas, 6, &rng));
  }
  fresh /= 20;
  EXPECT_LE(RoutingTableMetric(tables[0]), fresh + 1e-9);
}

TEST(RoutingTest, GeneratedTablesContactFewerServersThanBalanced) {
  // The point of the strategy (section 4.4): fewer hosts per query on a
  // large cluster.
  Random rng(3);
  auto replicas = MakeReplicaMap(600, 50, 3);
  RoutingTable balanced = BuildBalancedRoutingTable(replicas, &rng);
  RoutingTable generated = GenerateRoutingTable(replicas, 8, &rng);
  CheckCoverage(generated, replicas);
  EXPECT_EQ(balanced.num_servers(), 50);
  // The ring-replica fixture needs >= ~17 servers for coverage; the greedy
  // strategy should stay well below the full 50.
  EXPECT_LT(generated.num_servers(), 32);
}

TEST(RoutingTest, SingleSegment) {
  Random rng(5);
  std::map<std::string, std::vector<std::string>> replicas = {
      {"only", {"a", "b"}}};
  RoutingTable table = GenerateRoutingTable(replicas, 4, &rng);
  CheckCoverage(table, replicas);
  EXPECT_EQ(table.total_segments(), 1u);
}

TEST(RoutingTest, EmptyInput) {
  Random rng(5);
  auto tables = GenerateRoutingTables({}, GeneratedRoutingOptions{}, &rng);
  EXPECT_TRUE(tables.empty());
}

}  // namespace
}  // namespace pinot
