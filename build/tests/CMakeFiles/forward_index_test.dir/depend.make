# Empty dependencies file for forward_index_test.
# This may be replaced when dependencies are built.
