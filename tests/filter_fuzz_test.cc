// Filter-equivalence fuzz: random AND/OR trees over sorted, inverted, and
// plain columns, evaluated under every planner mode (cost-based, forced
// index, forced scan) and checked bit-identical against a brute-force
// per-row PredicateMatchesValue oracle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "query/filter_evaluator.h"
#include "query/query.h"
#include "segment/row_extract.h"
#include "segment/segment_builder.h"

namespace pinot {
namespace {

Schema FuzzSchema() {
  auto schema = Schema::Make({
      FieldSpec::Dimension("s", DataType::kLong),    // Sorted.
      FieldSpec::Dimension("i", DataType::kString),  // Inverted index.
      FieldSpec::Dimension("p", DataType::kString),  // Plain (scan only).
      FieldSpec::Dimension("mv", DataType::kString,
                           /*single_value=*/false),  // Multi-value, plain.
      FieldSpec::Metric("m", DataType::kLong),
  });
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return *schema;
}

std::shared_ptr<ImmutableSegment> BuildFuzzSegment(Random* rng,
                                                   uint32_t num_rows) {
  SegmentBuildConfig config;
  config.table_name = "fuzz";
  config.segment_name = "fuzz_0";
  config.sort_columns = {"s"};
  config.inverted_index_columns = {"i"};
  SegmentBuilder builder(FuzzSchema(), config);
  const std::vector<std::string> ivals = {"a", "b", "c", "d", "e", "f"};
  const std::vector<std::string> pvals = {"x1", "x2", "x3", "x4",
                                          "x5", "x6", "x7", "x8"};
  const std::vector<std::string> mvals = {"m1", "m2", "m3", "m4"};
  for (uint32_t r = 0; r < num_rows; ++r) {
    Row row;
    row.SetLong("s", static_cast<int64_t>(rng->NextUint64(24)));
    row.SetString("i", ivals[rng->NextUint64(ivals.size())]);
    row.SetString("p", pvals[rng->NextUint64(pvals.size())]);
    std::vector<std::string> tags;
    const uint64_t n_tags = rng->NextUint64(4);  // 0..3 entries.
    for (uint64_t t = 0; t < n_tags; ++t) {
      tags.push_back(mvals[rng->NextUint64(mvals.size())]);
    }
    row.SetStringArray("mv", tags);
    row.SetLong("m", static_cast<int64_t>(r));
    Status st = builder.AddRow(row);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  auto segment = builder.Build();
  EXPECT_TRUE(segment.ok()) << segment.status().ToString();
  return *segment;
}

Value RandomValueFor(Random* rng, const std::string& column) {
  if (column == "s") {
    // Mostly in-domain, sometimes outside [0, 24).
    return Value{static_cast<int64_t>(rng->NextInt64InRange(-2, 26))};
  }
  if (column == "i") {
    const std::vector<std::string> pool = {"a", "b", "c", "d",
                                           "e", "f", "zz"};
    return Value{pool[rng->NextUint64(pool.size())]};
  }
  if (column == "p") {
    const std::vector<std::string> pool = {"x1", "x2", "x3", "x4", "x5",
                                           "x6", "x7", "x8", "nope"};
    return Value{pool[rng->NextUint64(pool.size())]};
  }
  const std::vector<std::string> pool = {"m1", "m2", "m3", "m4", "m9"};
  return Value{pool[rng->NextUint64(pool.size())]};
}

Predicate RandomPredicate(Random* rng) {
  const std::vector<std::string> columns = {"s", "i", "p", "mv"};
  Predicate pred;
  pred.column = columns[rng->NextUint64(columns.size())];
  switch (rng->NextUint64(5)) {
    case 0:
      pred.op = PredicateOp::kEq;
      pred.values.push_back(RandomValueFor(rng, pred.column));
      break;
    case 1:
      pred.op = PredicateOp::kNotEq;
      pred.values.push_back(RandomValueFor(rng, pred.column));
      break;
    case 2:
    case 3: {
      pred.op = rng->NextBool() ? PredicateOp::kIn : PredicateOp::kNotIn;
      const uint64_t n = rng->NextUint64(3) + 1;
      for (uint64_t i = 0; i < n; ++i) {
        pred.values.push_back(RandomValueFor(rng, pred.column));
      }
      break;
    }
    default: {
      // Range; only meaningful on the numeric sorted column, but legal
      // (lexicographic) on strings too.
      pred.op = PredicateOp::kRange;
      if (rng->NextBool(0.8)) {
        pred.lower = RandomValueFor(rng, pred.column);
        pred.lower_inclusive = rng->NextBool();
      }
      if (rng->NextBool(0.8)) {
        pred.upper = RandomValueFor(rng, pred.column);
        pred.upper_inclusive = rng->NextBool();
      }
      break;
    }
  }
  return pred;
}

FilterNode RandomTree(Random* rng, int depth) {
  if (depth == 0 || rng->NextBool(0.4)) {
    return FilterNode::Leaf(RandomPredicate(rng));
  }
  FilterNode node;
  node.kind = rng->NextBool() ? FilterNode::Kind::kAnd : FilterNode::Kind::kOr;
  const uint64_t n = rng->NextUint64(2) + 2;  // 2..3 children.
  for (uint64_t i = 0; i < n; ++i) {
    node.children.push_back(RandomTree(rng, depth - 1));
  }
  return node;
}

std::string TreeToString(const FilterNode& node) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      return node.predicate.ToString();
    case FilterNode::Kind::kAnd:
    case FilterNode::Kind::kOr: {
      std::string out = node.kind == FilterNode::Kind::kAnd ? "AND(" : "OR(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += TreeToString(node.children[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

// Brute-force row oracle: evaluates the tree on the document's extracted
// values with PredicateMatchesValue.
bool OracleMatches(const FilterNode& node, const Row& row) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      return PredicateMatchesValue(node.predicate,
                                   row.Get(node.predicate.column));
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        if (!OracleMatches(child, row)) return false;
      }
      return true;
    case FilterNode::Kind::kOr:
      for (const auto& child : node.children) {
        if (OracleMatches(child, row)) return true;
      }
      return false;
  }
  return false;
}

TEST(FilterFuzzTest, AllPlannerChoicesMatchRowOracle) {
  Random rng(20260809);
  const uint32_t num_rows = 400;
  auto segment = BuildFuzzSegment(&rng, num_rows);

  // Extract every document once; the oracle runs on real stored values,
  // so the sorted-column row reordering is already accounted for.
  std::vector<Row> rows;
  rows.reserve(num_rows);
  for (uint32_t doc = 0; doc < num_rows; ++doc) {
    rows.push_back(ExtractRow(*segment, doc));
  }

  const std::pair<FilterEvaluator::PlannerMode, const char*> modes[] = {
      {FilterEvaluator::PlannerMode::kCostBased, "cost-based"},
      {FilterEvaluator::PlannerMode::kPreferIndex, "forced-index"},
      {FilterEvaluator::PlannerMode::kForceScan, "forced-scan"},
  };

  for (int iter = 0; iter < 120; ++iter) {
    const FilterNode tree = RandomTree(&rng, 3);

    std::vector<uint32_t> expected;
    for (uint32_t doc = 0; doc < num_rows; ++doc) {
      if (OracleMatches(tree, rows[doc])) expected.push_back(doc);
    }

    for (const auto& [mode, mode_name] : modes) {
      for (const bool reorder : {true, false}) {
        FilterEvaluator evaluator(*segment, nullptr);
        evaluator.set_planner_mode(mode);
        evaluator.set_reorder_predicates(reorder);
        auto docs = evaluator.Evaluate(std::optional<FilterNode>(tree));
        ASSERT_TRUE(docs.ok()) << docs.status().ToString();
        ASSERT_EQ(docs->ToBitmap().ToVector(), expected)
            << "iter " << iter << " mode " << mode_name
            << (reorder ? " reordered" : " in-order") << "\ntree: "
            << TreeToString(tree);
      }
    }
  }
}

}  // namespace
}  // namespace pinot
