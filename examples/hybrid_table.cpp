// Hybrid table walkthrough (paper section 3.3.3, Figure 6): an offline
// table holding daily Hadoop-style pushes plus a realtime table consuming
// the live stream, sharing the logical name "metrics". The broker rewrites
// each query into an offline part (before the time boundary) and a
// realtime part (at/after it) and merges the results.

#include <cstdio>

#include "cluster/pinot_cluster.h"
#include "segment/segment_builder.h"

using namespace pinot;

namespace {

Schema MetricsSchema() {
  auto schema = Schema::Make({
      FieldSpec::Dimension("page", DataType::kString),
      FieldSpec::Metric("views", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  return *schema;
}

Row MakeRow(const char* page, int64_t views, int64_t day) {
  Row row;
  row.SetString("page", page).SetLong("views", views).SetLong("day", day);
  return row;
}

}  // namespace

int main() {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  StreamTopic* topic = cluster.streams()->GetOrCreateTopic("metrics", 1);

  // Offline table: two daily pushes covering days 1-2 and 3-4.
  TableConfig offline;
  offline.name = "metrics";
  offline.type = TableType::kOffline;
  offline.schema = MetricsSchema();
  if (!leader->AddTable(offline).ok()) return 1;

  auto push_segment = [&](const char* name,
                          std::vector<Row> rows) {
    SegmentBuildConfig config;
    config.table_name = "metrics_OFFLINE";
    config.segment_name = name;
    SegmentBuilder builder(MetricsSchema(), config);
    for (const auto& row : rows) {
      if (!builder.AddRow(row).ok()) std::abort();
    }
    auto segment = builder.Build();
    Status st =
        leader->UploadSegment("metrics_OFFLINE", (*segment)->SerializeToBlob());
    if (!st.ok()) {
      std::fprintf(stderr, "upload: %s\n", st.ToString().c_str());
      std::abort();
    }
  };
  push_segment("daily_1_2", {MakeRow("home", 100, 1), MakeRow("jobs", 40, 1),
                             MakeRow("home", 120, 2), MakeRow("jobs", 50, 2)});
  push_segment("daily_3_4", {MakeRow("home", 130, 3), MakeRow("jobs", 60, 3),
                             MakeRow("home", 140, 4), MakeRow("jobs", 70, 4)});

  // Realtime table consuming the stream; it overlaps offline on day 4 and
  // extends into days 5-6.
  TableConfig realtime;
  realtime.name = "metrics";
  realtime.type = TableType::kRealtime;
  realtime.schema = MetricsSchema();
  realtime.realtime.topic = "metrics";
  realtime.realtime.flush_threshold_rows = 100000;
  if (!leader->AddTable(realtime).ok()) return 1;

  topic->Produce("k", MakeRow("home", 999, 4));  // Overlaps offline day 4.
  topic->Produce("k", MakeRow("home", 150, 5));
  topic->Produce("k", MakeRow("jobs", 80, 5));
  topic->Produce("k", MakeRow("home", 160, 6));
  cluster.ProcessRealtimeTicks(2);

  auto boundary =
      cluster.property_store()->Get("/TIMEBOUNDARY/metrics");
  std::printf("time boundary: day %s (offline serves day <= %lld, realtime "
              "serves day >= %lld)\n\n",
              boundary.ok() ? boundary->c_str() : "?",
              boundary.ok() ? std::stoll(*boundary) - 1 : -1,
              boundary.ok() ? std::stoll(*boundary) : -1);

  // Note day 4: offline has home=140, realtime has home=999. The rewrite
  // must count the realtime copy only (at/after the boundary).
  for (const char* pql : {
           "SELECT count(*) FROM metrics",
           "SELECT sum(views) FROM metrics WHERE page = 'home'",
           "SELECT sum(views) FROM metrics WHERE day >= 5",
           "SELECT sum(views) FROM metrics WHERE day <= 3",
           "SELECT sum(views) FROM metrics GROUP BY page TOP 5",
       }) {
    auto result = cluster.Execute(pql);
    std::printf("> %s\n%s\n\n", pql, result.ToString().c_str());
  }
  return 0;
}
