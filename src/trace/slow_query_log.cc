#include "trace/slow_query_log.h"

#include <algorithm>
#include <cstdio>

namespace pinot {

void SlowQueryLog::Record(double latency_millis,
                          const std::string& description,
                          const TraceSpan& root) {
  if (options_.capacity == 0) return;
  if (latency_millis < options_.threshold_millis) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= options_.capacity &&
      latency_millis <= entries_.back().latency_millis) {
    return;
  }
  Entry entry;
  entry.latency_millis = latency_millis;
  entry.description = description;
  entry.rendered_trace = root.ToString();
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const Entry& a, const Entry& b) {
        return a.latency_millis > b.latency_millis;
      });
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > options_.capacity) entries_.pop_back();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Worst(size_t top_n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (top_n == 0 || top_n >= entries_.size()) return entries_;
  return std::vector<Entry>(entries_.begin(),
                            entries_.begin() + static_cast<long>(top_n));
}

std::string SlowQueryLog::Dump(size_t top_n) const {
  const std::vector<Entry> worst = Worst(top_n);
  std::string out;
  if (worst.empty()) {
    out = "# slow query log: empty\n";
    return out;
  }
  char buf[128];
  size_t rank = 1;
  for (const auto& entry : worst) {
    std::snprintf(buf, sizeof(buf), "# slow query %zu: %.3fms  %s\n", rank++,
                  entry.latency_millis, entry.description.c_str());
    out.append(buf);
    out.append(entry.rendered_trace);
  }
  return out;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace pinot
