# Empty dependencies file for schema_value_test.
# This may be replaced when dependencies are built.
