#include "query/doc_id_set.h"

#include <algorithm>

namespace pinot {

uint64_t DocIdSet::Cardinality() const {
  switch (kind_) {
    case Kind::kAll:
      return num_docs_;
    case Kind::kNone:
      return 0;
    case Kind::kRange:
      return end_ - begin_;
    case Kind::kBitmap:
      return bitmap_.Cardinality();
  }
  return 0;
}

void DocIdSet::ForEachDoc(const std::function<void(uint32_t)>& fn) const {
  switch (kind_) {
    case Kind::kAll:
      for (uint32_t doc = 0; doc < num_docs_; ++doc) fn(doc);
      return;
    case Kind::kNone:
      return;
    case Kind::kRange:
      for (uint32_t doc = begin_; doc < end_; ++doc) fn(doc);
      return;
    case Kind::kBitmap:
      bitmap_.ForEach(fn);
      return;
  }
}

void DocIdSet::ForEachRange(
    const std::function<void(uint32_t, uint32_t)>& fn) const {
  switch (kind_) {
    case Kind::kAll:
      if (num_docs_ > 0) fn(0, num_docs_);
      return;
    case Kind::kNone:
      return;
    case Kind::kRange:
      fn(begin_, end_);
      return;
    case Kind::kBitmap:
      bitmap_.ForEachRange(fn);
      return;
  }
}

void DocIdSet::ForEachBlock(
    const std::function<void(const DocIdBlock&)>& fn) const {
  auto emit_range = [&fn](uint32_t begin, uint32_t end) {
    while (begin < end) {
      DocIdBlock block;
      block.begin = begin;
      block.count = std::min(end - begin, kDocIdBlockSize);
      fn(block);
      begin += block.count;
    }
  };
  switch (kind_) {
    case Kind::kAll:
      emit_range(0, num_docs_);
      return;
    case Kind::kNone:
      return;
    case Kind::kRange:
      emit_range(begin_, end_);
      return;
    case Kind::kBitmap:
      bitmap_.ForEachBlock(
          kDocIdBlockSize,
          [&fn](uint32_t begin, uint32_t count, const uint32_t* docs) {
            DocIdBlock block;
            block.begin = begin;
            block.count = count;
            block.docs = docs;
            fn(block);
          });
      return;
  }
}

DocIdSet DocIdSet::Intersect(const DocIdSet& other) const {
  if (IsEmpty() || other.IsEmpty()) return None(num_docs_);
  if (IsAll()) return other;
  if (other.IsAll()) return *this;
  if (IsRangeLike() && other.IsRangeLike()) {
    return FromRange(std::max(range_begin(), other.range_begin()),
                     std::min(range_end(), other.range_end()), num_docs_);
  }
  if (IsRangeLike()) {
    return FromBitmap(
        other.bitmap_.And(RoaringBitmap::FromRange(range_begin(), range_end())),
        num_docs_);
  }
  if (other.IsRangeLike()) {
    return FromBitmap(bitmap_.And(RoaringBitmap::FromRange(
                          other.range_begin(), other.range_end())),
                      num_docs_);
  }
  return FromBitmap(bitmap_.And(other.bitmap_), num_docs_);
}

DocIdSet DocIdSet::Union(const DocIdSet& other) const {
  if (IsAll() || other.IsAll()) return All(num_docs_);
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  if (IsRangeLike() && other.IsRangeLike()) {
    // Contiguous only when the ranges touch or overlap.
    if (range_begin() <= other.range_end() &&
        other.range_begin() <= range_end()) {
      return FromRange(std::min(range_begin(), other.range_begin()),
                       std::max(range_end(), other.range_end()), num_docs_);
    }
  }
  return FromBitmap(ToBitmap().Or(other.ToBitmap()), num_docs_);
}

void DocIdSet::IntersectWith(const DocIdSet& other) {
  if (IsEmpty() || other.IsAll()) return;
  if (other.IsEmpty()) {
    *this = None(num_docs_);
    return;
  }
  if (IsAll()) {
    *this = other;
    return;
  }
  if (kind_ == Kind::kBitmap && other.kind_ == Kind::kBitmap) {
    bitmap_.AndWith(other.bitmap_);
    if (bitmap_.Empty()) *this = None(num_docs_);
    return;
  }
  *this = Intersect(other);
}

void DocIdSet::UnionWith(const DocIdSet& other) {
  if (IsAll() || other.IsEmpty()) return;
  if (other.IsAll()) {
    *this = All(num_docs_);
    return;
  }
  if (IsEmpty()) {
    *this = other;
    return;
  }
  if (IsRangeLike() && other.IsRangeLike() &&
      range_begin() <= other.range_end() &&
      other.range_begin() <= range_end()) {
    *this = FromRange(std::min(range_begin(), other.range_begin()),
                      std::max(range_end(), other.range_end()), num_docs_);
    return;
  }
  if (kind_ != Kind::kBitmap) {
    bitmap_ = ToBitmap();
    kind_ = Kind::kBitmap;
  }
  if (other.kind_ == Kind::kBitmap) {
    bitmap_.OrWith(other.bitmap_);
  } else {
    bitmap_.AddRange(other.range_begin(), other.range_end());
  }
}

RoaringBitmap DocIdSet::ToBitmap() const {
  switch (kind_) {
    case Kind::kAll:
      return RoaringBitmap::FromRange(0, num_docs_);
    case Kind::kNone:
      return RoaringBitmap();
    case Kind::kRange:
      return RoaringBitmap::FromRange(begin_, end_);
    case Kind::kBitmap:
      return bitmap_;
  }
  return RoaringBitmap();
}

}  // namespace pinot
