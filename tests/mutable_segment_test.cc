#include "realtime/mutable_segment.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsRows;
using test::AnalyticsSchema;
using test::ToRow;

TEST(MutableSegmentTest, IndexAndQueryability) {
  SimulatedClock clock(5000);
  MutableSegment segment(AnalyticsSchema(), "t_REALTIME", "t__0__0", &clock);
  EXPECT_EQ(segment.num_docs(), 0u);
  for (const auto& row : AnalyticsRows()) {
    ASSERT_TRUE(segment.Index(ToRow(row)).ok());
  }
  EXPECT_EQ(segment.num_docs(), 12u);
  EXPECT_EQ(segment.metadata().min_time, 100);
  EXPECT_EQ(segment.metadata().max_time, 103);
  EXPECT_EQ(segment.metadata().creation_time_millis, 5000);

  const ColumnReader* country = segment.GetColumn("country");
  ASSERT_NE(country, nullptr);
  EXPECT_FALSE(country->dictionary().sorted());
  EXPECT_EQ(country->stats().cardinality, 4);
  EXPECT_EQ(country->inverted_index(), nullptr);
  EXPECT_EQ(country->sorted_index(), nullptr);
  // Arrival-order ids: first row's country ("us") got id 0.
  EXPECT_EQ(country->GetDictId(0), 0u);
  EXPECT_EQ(std::get<std::string>(country->dictionary().ValueAt(0)), "us");
}

TEST(MutableSegmentTest, QueriesMatchImmutableExecution) {
  SimulatedClock clock;
  MutableSegment mutable_segment(AnalyticsSchema(), "t", "s", &clock);
  for (const auto& row : AnalyticsRows()) {
    ASSERT_TRUE(mutable_segment.Index(ToRow(row)).ok());
  }
  auto immutable = test::BuildAnalyticsSegment();

  // Wrap the mutable segment in a shared_ptr alias for the executor.
  std::shared_ptr<SegmentInterface> view(&mutable_segment,
                                         [](SegmentInterface*) {});
  for (const char* pql : {
           "SELECT count(*) FROM t WHERE country = 'us'",
           "SELECT sum(impressions) FROM t WHERE day BETWEEN 101 AND 102",
           "SELECT count(*) FROM t WHERE tags = 'a'",
           "SELECT sum(clicks) FROM t GROUP BY browser TOP 10",
           "SELECT distinctcount(memberId) FROM t WHERE browser != 'chrome'",
       }) {
    auto a = test::RunPql({view}, pql);
    auto b = test::RunPql(immutable, pql);
    ASSERT_FALSE(a.partial) << pql << ": " << a.error_message;
    ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
    for (size_t i = 0; i < a.aggregates.size(); ++i) {
      EXPECT_EQ(ValueToString(a.aggregates[i]), ValueToString(b.aggregates[i]))
          << pql;
    }
    EXPECT_EQ(a.group_rows.size(), b.group_rows.size()) << pql;
  }
}

TEST(MutableSegmentTest, SealProducesIndexedImmutable) {
  SimulatedClock clock;
  MutableSegment segment(AnalyticsSchema(), "t_REALTIME", "t__0__0", &clock);
  for (const auto& row : AnalyticsRows()) {
    ASSERT_TRUE(segment.Index(ToRow(row)).ok());
  }
  SegmentBuildConfig config;
  config.sort_columns = {"memberId"};
  config.inverted_index_columns = {"browser"};
  auto sealed = segment.Seal(config);
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  EXPECT_EQ((*sealed)->num_docs(), 12u);
  EXPECT_EQ((*sealed)->metadata().segment_name, "t__0__0");
  EXPECT_EQ((*sealed)->metadata().sorted_column, "memberId");
  EXPECT_NE((*sealed)->GetColumn("memberId")->sorted_index(), nullptr);
  EXPECT_NE((*sealed)->GetColumn("browser")->inverted_index(), nullptr);
  EXPECT_TRUE((*sealed)->GetColumn("country")->dictionary().sorted());

  // Sealed results equal mutable results.
  std::shared_ptr<SegmentInterface> view(&segment, [](SegmentInterface*) {});
  auto a = test::RunPql({view},
                        "SELECT sum(impressions) FROM t GROUP BY country TOP 10");
  auto b = test::RunPql(*sealed,
                        "SELECT sum(impressions) FROM t GROUP BY country TOP 10");
  ASSERT_EQ(a.group_rows.size(), b.group_rows.size());
  for (size_t i = 0; i < a.group_rows.size(); ++i) {
    EXPECT_EQ(ValueToString(a.group_rows[i].keys[0]),
              ValueToString(b.group_rows[i].keys[0]));
    EXPECT_EQ(ValueToString(a.group_rows[i].values[0]),
              ValueToString(b.group_rows[i].values[0]));
  }
}

TEST(MutableSegmentTest, ArityValidation) {
  SimulatedClock clock;
  MutableSegment segment(AnalyticsSchema(), "t", "s", &clock);
  Row bad;
  bad.SetStringArray("country", {"x"});
  EXPECT_FALSE(segment.Index(bad).ok());
  Row bad2;
  bad2.SetString("tags", "not-an-array");
  EXPECT_FALSE(segment.Index(bad2).ok());
}

TEST(MutableSegmentTest, RejectedRowLeavesNoPartialState) {
  // Regression: Index used to append field-by-field, so a row whose FIRST
  // field was valid but whose SECOND field was mis-typed left a torn row:
  // the first column one entry longer than the rest, corrupting every
  // later doc id. Validation must reject the whole row up front.
  SimulatedClock clock;
  MutableSegment segment(AnalyticsSchema(), "t", "s", &clock);
  Row torn;
  torn.SetString("country", "zz");            // Valid first field...
  torn.SetStringArray("browser", {"x", "y"});  // ...then a mis-typed one.
  EXPECT_FALSE(segment.Index(torn).ok());
  EXPECT_EQ(segment.num_docs(), 0u);
  // The valid prefix must not have leaked into the country column.
  EXPECT_EQ(segment.GetColumn("country")->stats().cardinality, 0);

  // The segment stays fully usable: a good row indexes and queries cleanly.
  for (const auto& row : AnalyticsRows()) {
    ASSERT_TRUE(segment.Index(ToRow(row)).ok());
  }
  EXPECT_EQ(segment.num_docs(), 12u);
  std::shared_ptr<SegmentInterface> view(&segment, [](SegmentInterface*) {});
  auto result = test::RunPql({view}, "SELECT count(*) FROM t");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);
  result = test::RunPql({view}, "SELECT count(*) FROM t WHERE country = 'zz'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 0);
}

TEST(MutableSegmentTest, TimeColumnKeepsInt64Precision) {
  // Regression: min/max time maintenance used to round-trip the time value
  // through double, which silently loses precision past 2^53 (epoch-nanos
  // timestamps live there).
  SimulatedClock clock;
  MutableSegment segment(AnalyticsSchema(), "t", "s", &clock);
  const int64_t t0 = (int64_t{1} << 53) + 1;  // Not representable as double.
  const int64_t t1 = (int64_t{1} << 53) + 3;
  Row row;
  row.SetString("country", "us").SetLong("day", t0);
  ASSERT_TRUE(segment.Index(row).ok());
  Row row2;
  row2.SetString("country", "us").SetLong("day", t1);
  ASSERT_TRUE(segment.Index(row2).ok());
  EXPECT_EQ(segment.metadata().min_time, t0);
  EXPECT_EQ(segment.metadata().max_time, t1);
}

TEST(MutableSegmentTest, ConcurrentIngestAndQuery) {
  // Single writer indexing while readers execute queries under the
  // segment's shared lock (exactly what Server::ExecuteServerQuery does).
  // Pre-fix this raced MutableColumn::Append's vector reallocation; run
  // under PINOT_SANITIZE to make corruption loud.
  SimulatedClock clock;
  MutableSegment segment(AnalyticsSchema(), "t", "s", &clock);
  constexpr int kRows = 8000;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    const auto rows = AnalyticsRows();
    for (int i = 0; i < kRows; ++i) {
      if (!segment.Index(ToRow(rows[i % rows.size()])).ok()) {
        failures.fetch_add(1);
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::shared_ptr<SegmentInterface> view(&segment,
                                             [](SegmentInterface*) {});
      uint32_t last_count = 0;
      uint64_t iter = 0;
      while (!done.load()) {
        {
          auto lock = segment.AcquireReadLock();
          const uint32_t docs = segment.num_docs();
          if (docs > 0) {
            // Touch the newest row's data: the tail of the value vectors
            // is exactly where a racing reallocation would bite.
            const ColumnReader* country = segment.GetColumn("country");
            (void)country->dictionary().ValueAt(
                static_cast<int>(country->GetDictId(docs - 1)));
          }
          if (iter % 512 == 0) {  // Full executions are pricey; sample.
            auto result = test::RunPql({view}, "SELECT count(*) FROM t");
            const auto count = static_cast<uint32_t>(
                std::get<int64_t>(result.aggregates[0]));
            // Counts are monotone and match the doc count published under
            // the same lock hold.
            if (count < last_count || count != docs) failures.fetch_add(1);
            last_count = count;
          }
        }
        ++iter;
        // Leave the writer a lock window: glibc's rwlock prefers readers,
        // and back-to-back shared holds would starve Index indefinitely.
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(segment.num_docs(), static_cast<uint32_t>(kRows));
  std::shared_ptr<SegmentInterface> view(&segment, [](SegmentInterface*) {});
  auto result = test::RunPql({view}, "SELECT count(*) FROM t");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), kRows);
}

TEST(MutableSegmentTest, MissingFieldsUseDefaults) {
  SimulatedClock clock;
  MutableSegment segment(AnalyticsSchema(), "t", "s", &clock);
  ASSERT_TRUE(segment.Index(Row()).ok());
  const ColumnReader* impressions = segment.GetColumn("impressions");
  EXPECT_EQ(impressions->dictionary().Int64At(
                static_cast<int>(impressions->GetDictId(0))),
            0);
}

TEST(MutableSegmentTest, EmptyMultiValueArraysOnly) {
  // Regression: a multi-value column that only ever sees empty arrays must
  // not crash stats maintenance (found by the hybrid integration test).
  SimulatedClock clock;
  MutableSegment segment(AnalyticsSchema(), "t", "s", &clock);
  Row row;
  row.SetStringArray("tags", {});
  ASSERT_TRUE(segment.Index(row).ok());
  ASSERT_TRUE(segment.Index(row).ok());
  EXPECT_EQ(segment.GetColumn("tags")->stats().cardinality, 0);
  std::shared_ptr<SegmentInterface> view(&segment, [](SegmentInterface*) {});
  auto result = test::RunPql({view}, "SELECT count(*) FROM t");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 2);
}

}  // namespace
}  // namespace pinot
