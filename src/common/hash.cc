#include "common/hash.h"

#include <cassert>
#include <cstring>

namespace pinot {

uint32_t Murmur2(std::string_view data, uint32_t seed) {
  const uint32_t m = 0x5bd1e995;
  const int r = 24;
  const size_t length = data.size();
  uint32_t h = seed ^ static_cast<uint32_t>(length);

  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t len = length;
  while (len >= 4) {
    uint32_t k;
    std::memcpy(&k, p, 4);
    k *= m;
    k ^= k >> r;
    k *= m;
    h *= m;
    h ^= k;
    p += 4;
    len -= 4;
  }

  switch (len) {
    case 3:
      h ^= static_cast<uint32_t>(p[2]) << 16;
      [[fallthrough]];
    case 2:
      h ^= static_cast<uint32_t>(p[1]) << 8;
      [[fallthrough]];
    case 1:
      h ^= static_cast<uint32_t>(p[0]);
      h *= m;
      break;
    default:
      break;
  }

  h ^= h >> 13;
  h *= m;
  h ^= h >> 15;
  return h;
}

int32_t KafkaPartition(std::string_view key, int32_t num_partitions) {
  assert(num_partitions > 0);
  const uint32_t hash = Murmur2(key) & 0x7fffffff;
  return static_cast<int32_t>(hash % static_cast<uint32_t>(num_partitions));
}

namespace {
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320 ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};
}  // namespace

uint32_t Crc32(std::string_view data) {
  static const Crc32Table* table = new Crc32Table();
  uint32_t crc = 0xffffffff;
  for (unsigned char byte : data) {
    crc = table->entries[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffff;
}

}  // namespace pinot
