// Figure 14: Druid(-like) vs Pinot on the "share analytics" dataset —
// every query filters on a high-cardinality shared-item id. The two major
// differences reproduced here (per the paper): Druid builds inverted
// indexes on every dimension (larger footprint), while Pinot physically
// sorts the data on the item identifier and serves item lookups from a
// contiguous range.

#include "baseline/druid_like.h"
#include "bench/bench_util.h"

namespace pinot {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload workload = MakeShareAnalyticsWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  struct Engine {
    std::string name;
    std::vector<std::shared_ptr<SegmentInterface>> segments;
  };
  std::vector<Engine> engines;
  engines.push_back({"druid-like",
                     BuildSegments(workload, DruidLikeBuildConfig(workload.schema),
                                   options.num_segments, "druid")});
  engines.push_back({"pinot-sorted",
                     BuildSegments(workload, workload.pinot_config,
                                   options.num_segments, "pinot")});

  std::printf("# dataset: %u rows, %d segments, %zu sampled queries\n",
              options.rows, options.num_segments, queries.size());
  for (const auto& engine : engines) {
    uint64_t bytes = 0;
    for (const auto& segment : engine.segments) {
      auto immutable =
          std::dynamic_pointer_cast<const ImmutableSegment>(segment);
      if (immutable != nullptr) bytes += immutable->SizeInBytes();
    }
    // The paper reports 300 GB (Pinot) vs 1.2 TB (Druid) for this
    // scenario; the same direction should hold here.
    std::printf("# %-18s segment bytes: %10lu\n", engine.name.c_str(),
                static_cast<unsigned long>(bytes));
  }
  PrintQpsHeader("Figure 14", "Druid vs Pinot on the share-analytics dataset");

  for (const auto& engine : engines) {
    for (double qps : options.qps_sweep) {
      QpsPoint point = RunQpsPoint(
          [&](int i) {
            PartialResult partial =
                ExecuteQueryOnSegments(engine.segments, queries[i]);
            QueryResult result =
                ReduceToFinalResult(queries[i], std::move(partial));
            (void)result;
          },
          static_cast<int>(queries.size()), qps, options.client_threads,
          options.duration_ms);
      PrintQpsPoint(engine.name, point);
      if (point.avg_ms > 250) break;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
