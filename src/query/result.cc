#include "query/result.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace pinot {

void AppendRenderedGroupKeyValue(std::string_view rendered, std::string* out) {
  const uint32_t size = static_cast<uint32_t>(rendered.size());
  char prefix[sizeof(size)];
  std::memcpy(prefix, &size, sizeof(size));
  out->append(prefix, sizeof(size));
  out->append(rendered.data(), rendered.size());
}

void AppendGroupKeyValue(const Value& v, std::string* out) {
  AppendRenderedGroupKeyValue(ValueToString(v), out);
}

std::string EncodeGroupKey(const std::vector<Value>& keys) {
  std::string out;
  for (const auto& key : keys) AppendGroupKeyValue(key, &out);
  return out;
}

// --- GroupTable ------------------------------------------------------------

bool GroupTable::EnsureArity(size_t num_keys, size_t num_aggs) {
  if (!arity_set_) {
    num_keys_ = num_keys;
    num_aggs_ = num_aggs;
    arity_set_ = true;
    return true;
  }
  return num_keys_ == num_keys && num_aggs_ == num_aggs;
}

uint32_t GroupTable::FindWithHash(std::string_view key, size_t hash) const {
  if (slots_.empty()) return kInvalidGroup;
  const size_t mask = slots_.size() - 1;
  size_t pos = hash & mask;
  while (true) {
    const uint32_t g = slots_[pos];
    if (g == kInvalidGroup) return kInvalidGroup;
    if (EncodedKeyAt(g) == key) return g;
    pos = (pos + 1) & mask;
  }
}

uint32_t GroupTable::Find(std::string_view encoded_key) const {
  return FindWithHash(encoded_key, HashKey(encoded_key));
}

void GroupTable::GrowIndex() {
  const size_t new_capacity = slots_.empty() ? 1024 : slots_.size() * 2;
  slots_.assign(new_capacity, kInvalidGroup);
  const size_t mask = new_capacity - 1;
  for (uint32_t g = 0; g < group_count_; ++g) {
    size_t pos = HashKey(EncodedKeyAt(g)) & mask;
    while (slots_[pos] != kInvalidGroup) pos = (pos + 1) & mask;
    slots_[pos] = g;
  }
}

uint32_t GroupTable::AppendGroup(std::string_view key, size_t hash) {
  // Keep the index load factor under 0.7 (growing rehashes ordinal ints
  // only; keys stay put in the arena).
  if (slots_.empty() || (group_count_ + 1) * 10 >= slots_.size() * 7) {
    GrowIndex();
  }
  const uint32_t g = static_cast<uint32_t>(group_count_++);
  arena_.append(key.data(), key.size());
  key_offsets_.push_back(static_cast<uint32_t>(arena_.size()));
  states_.resize(states_.size() + num_aggs_);
  const size_t mask = slots_.size() - 1;
  size_t pos = hash & mask;
  while (slots_[pos] != kInvalidGroup) pos = (pos + 1) & mask;
  slots_[pos] = g;
  return g;
}

void GroupTable::AddGroup(std::vector<Value> keys,
                          std::vector<AggState>&& states) {
  const std::string encoded = EncodeGroupKey(keys);
  const uint32_t g = FindOrAdd(encoded, [&](std::vector<Value>* out) {
    for (auto& key : keys) out->push_back(std::move(key));
  });
  AggState* dst = StatesAt(g);
  for (size_t i = 0; i < num_aggs_; ++i) dst[i].Merge(std::move(states[i]));
}

void GroupTable::MergeFrom(GroupTable&& other, Status* status) {
  if (other.empty()) return;
  if (empty()) {
    *this = std::move(other);
    return;
  }
  if (num_keys_ != other.num_keys_ || num_aggs_ != other.num_aggs_) {
    // A peer running an older table config can disagree on the group or
    // aggregate arity; merging would index past the end. Keep our side and
    // flag the result partial.
    if (status->ok()) {
      *status = Status::FailedPrecondition(
          "group arity mismatch across partial results (" +
          std::to_string(num_keys_) + "x" + std::to_string(num_aggs_) +
          " vs " + std::to_string(other.num_keys_) + "x" +
          std::to_string(other.num_aggs_) + ")");
    }
    return;
  }
  for (uint32_t og = 0; og < other.size(); ++og) {
    const uint32_t g =
        FindOrAdd(other.EncodedKeyAt(og), [&](std::vector<Value>* out) {
          Value* keys = other.MutableKeysAt(og);
          for (size_t i = 0; i < num_keys_; ++i) {
            out->push_back(std::move(keys[i]));
          }
        });
    AggState* dst = StatesAt(g);
    AggState* src = other.StatesAt(og);
    for (size_t i = 0; i < num_aggs_; ++i) dst[i].Merge(std::move(src[i]));
  }
}

std::vector<uint32_t> GroupTable::RankedByFirstAgg(
    AggregationType first_type) const {
  std::vector<uint32_t> order(group_count_);
  for (uint32_t g = 0; g < group_count_; ++g) order[g] = g;
  if (num_aggs_ == 0) return order;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const double va = AggSortValue(first_type, *StatesAt(a));
    const double vb = AggSortValue(first_type, *StatesAt(b));
    if (va != vb) return va > vb;
    return EncodedKeyAt(a) < EncodedKeyAt(b);
  });
  return order;
}

size_t GroupTable::TrimToTopN(AggregationType first_type, size_t keep) {
  if (group_count_ <= keep) return 0;
  std::vector<uint32_t> order = RankedByFirstAgg(first_type);
  order.resize(keep);
  GroupTable trimmed;
  trimmed.EnsureArity(num_keys_, num_aggs_);
  for (uint32_t g : order) {
    const uint32_t ng =
        trimmed.FindOrAdd(EncodedKeyAt(g), [&](std::vector<Value>* out) {
          Value* keys = MutableKeysAt(g);
          for (size_t i = 0; i < num_keys_; ++i) {
            out->push_back(std::move(keys[i]));
          }
        });
    AggState* dst = trimmed.StatesAt(ng);
    AggState* src = StatesAt(g);
    for (size_t i = 0; i < num_aggs_; ++i) dst[i] = std::move(src[i]);
  }
  const size_t dropped = group_count_ - trimmed.size();
  *this = std::move(trimmed);
  return dropped;
}

size_t GroupTable::ApproxPayloadBytes() const {
  size_t bytes = arena_.size() + key_offsets_.size() * sizeof(uint32_t) +
                 states_.size() * sizeof(AggState) +
                 key_values_.size() * sizeof(Value);
  for (const auto& v : key_values_) {
    if (const auto* s = std::get_if<std::string>(&v)) bytes += s->size();
  }
  return bytes;
}

void QueryReceipt::Merge(const QueryReceipt& other) {
  queue_micros += other.queue_micros;
  plan_micros += other.plan_micros;
  filter_micros += other.filter_micros;
  scan_micros += other.scan_micros;
  agg_micros += other.agg_micros;
  route_micros += other.route_micros;
  scatter_micros += other.scatter_micros;
  reduce_micros += other.reduce_micros;
  docs_scanned += other.docs_scanned;
  docs_pruned += other.docs_pruned;
  segments_queried += other.segments_queried;
  segments_pruned += other.segments_pruned;
  scan_bytes += other.scan_bytes;
  payload_bytes += other.payload_bytes;
  groups += other.groups;
  trimmed += other.trimmed;
  calls += other.calls;
  retries += other.retries;
  timeouts += other.timeouts;
  hedges += other.hedges;
  hedge_wins += other.hedge_wins;
}

std::string QueryReceipt::ToString() const {
  auto ms = [](int64_t micros) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", micros / 1000.0);
    return std::string(buf);
  };
  std::string out;
  out += "receipt: phases queue=" + ms(queue_micros) + "ms plan=" +
         ms(plan_micros) + "ms filter=" + ms(filter_micros) + "ms scan=" +
         ms(scan_micros) + "ms agg=" + ms(agg_micros) + "ms route=" +
         ms(route_micros) + "ms scatter=" + ms(scatter_micros) +
         "ms reduce=" + ms(reduce_micros) + "ms\n";
  out += "receipt: work docs_scanned=" + std::to_string(docs_scanned) +
         " docs_pruned=" + std::to_string(docs_pruned) +
         " segments_queried=" + std::to_string(segments_queried) +
         " segments_pruned=" + std::to_string(segments_pruned) +
         " scan_bytes=" + std::to_string(scan_bytes) + " payload_bytes=" +
         std::to_string(payload_bytes) + " groups=" + std::to_string(groups) +
         " trimmed=" + std::to_string(trimmed) + "\n";
  out += "receipt: scatter calls=" + std::to_string(calls) + " retries=" +
         std::to_string(retries) + " timeouts=" + std::to_string(timeouts) +
         " hedges=" + std::to_string(hedges) + " hedge_wins=" +
         std::to_string(hedge_wins) + "\n";
  return out;
}

void PartialResult::Merge(PartialResult&& other) {
  if (!other.status.ok() && status.ok()) status = other.status;
  stats.Merge(other.stats);
  receipt.Merge(other.receipt);
  total_docs += other.total_docs;

  if (aggregates.empty()) {
    aggregates = std::move(other.aggregates);
  } else if (!other.aggregates.empty()) {
    if (aggregates.size() != other.aggregates.size()) {
      // A peer running an older table config can disagree on the aggregate
      // count; merging would index past the end. Keep our side and flag
      // the result partial.
      if (status.ok()) {
        status = Status::FailedPrecondition(
            "aggregate count mismatch across partial results (" +
            std::to_string(aggregates.size()) + " vs " +
            std::to_string(other.aggregates.size()) + ")");
      }
    } else {
      for (size_t i = 0; i < aggregates.size(); ++i) {
        aggregates[i].Merge(std::move(other.aggregates[i]));
      }
    }
  }

  groups.MergeFrom(std::move(other.groups), &status);

  for (auto& row : other.selection_rows) {
    selection_rows.push_back(std::move(row));
  }

  for (auto& span : other.spans) {
    spans.push_back(std::move(span));
  }
}

namespace {

// Comparator for selection ORDER BY: compares two rows on the given
// (column index, descending) list.
struct RowComparator {
  const std::vector<std::pair<int, bool>>* order;

  static int CompareValues(const Value& a, const Value& b) {
    const auto* sa = std::get_if<std::string>(&a);
    const auto* sb = std::get_if<std::string>(&b);
    if (sa != nullptr && sb != nullptr) return sa->compare(*sb);
    const double da = ValueToDouble(a);
    const double db = ValueToDouble(b);
    return da < db ? -1 : (da > db ? 1 : 0);
  }

  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (const auto& [index, desc] : *order) {
      const int c = CompareValues(a[index], b[index]);
      if (c != 0) return desc ? c > 0 : c < 0;
    }
    return false;
  }
};

}  // namespace

QueryResult ReduceToFinalResult(const Query& query, PartialResult&& partial) {
  QueryResult result;
  result.stats = partial.stats;
  result.receipt = partial.receipt;
  // The doc/segment tallies live canonically in stats; mirror them into the
  // receipt here so one struct carries the whole account.
  result.receipt.docs_scanned = partial.stats.docs_scanned;
  result.receipt.segments_queried = partial.stats.segments_queried;
  result.receipt.segments_pruned = partial.stats.segments_pruned;
  result.total_docs = partial.total_docs;
  if (!partial.status.ok()) {
    result.partial = true;
    result.error_message = partial.status.ToString();
  }

  if (query.IsAggregation()) {
    for (const auto& spec : query.aggregations) {
      result.aggregation_names.push_back(spec.ToString());
    }
    if (!query.HasGroupBy()) {
      if (partial.aggregates.empty()) {
        // No data (e.g. an empty table): render zero-valued aggregates.
        partial.aggregates.resize(query.aggregations.size());
      } else if (partial.aggregates.size() != query.aggregations.size()) {
        if (!result.partial) {
          result.partial = true;
          result.error_message = "aggregate count mismatch in merged result";
        }
        partial.aggregates.resize(query.aggregations.size());
      }
      for (size_t i = 0; i < query.aggregations.size(); ++i) {
        result.aggregates.push_back(
            FinalizeAgg(query.aggregations[i].type, partial.aggregates[i]));
      }
    } else {
      result.group_by_columns = query.group_by;
      // Order groups by (first aggregation descending, encoded key
      // ascending) and keep TOP n. The key tie-break matches the
      // server-side trim order, so trimming cannot reshuffle equal-valued
      // groups across the cut. A table whose arity disagrees with the
      // query (mismatched peers) cannot be finalized; report partial with
      // no rows rather than index past the end.
      GroupTable& table = partial.groups;
      if (!table.empty() &&
          (table.num_aggs() != query.aggregations.size() ||
           table.num_keys() != query.group_by.size())) {
        if (!result.partial) {
          result.partial = true;
          result.error_message = "group arity mismatch in merged result";
        }
      } else if (!table.empty()) {
        const AggregationType first_type = query.aggregations[0].type;
        std::vector<uint32_t> order = table.RankedByFirstAgg(first_type);
        const size_t n =
            std::min<size_t>(order.size(), static_cast<size_t>(query.top_n));
        result.group_rows.reserve(n);
        for (size_t r = 0; r < n; ++r) {
          const uint32_t g = order[r];
          QueryResult::GroupRow row;
          Value* keys = table.MutableKeysAt(g);
          row.keys.reserve(query.group_by.size());
          for (size_t i = 0; i < query.group_by.size(); ++i) {
            row.keys.push_back(std::move(keys[i]));
          }
          for (size_t i = 0; i < query.aggregations.size(); ++i) {
            row.values.push_back(FinalizeAgg(query.aggregations[i].type,
                                             table.StatesAt(g)[i]));
          }
          result.group_rows.push_back(std::move(row));
        }
      }
    }
  } else {
    result.selection_columns = query.selection_columns;
    auto& rows = partial.selection_rows;
    if (!query.order_by.empty()) {
      // Map order-by columns to selection indexes. An unresolvable column
      // is a query error: trimming unsorted rows to `limit` would silently
      // return arbitrary rows as if they were the top-k.
      std::vector<std::pair<int, bool>> order;
      for (const auto& [column, desc] : query.order_by) {
        int index = -1;
        for (size_t i = 0; i < query.selection_columns.size(); ++i) {
          if (query.selection_columns[i] == column) {
            index = static_cast<int>(i);
            break;
          }
        }
        if (index < 0) {
          result.partial = true;
          if (!result.error_message.empty()) result.error_message += "; ";
          result.error_message +=
              "ORDER BY column not in selection list: " + column;
          return result;
        }
        order.emplace_back(index, desc);
      }
      RowComparator cmp{&order};
      const size_t keep =
          std::min<size_t>(rows.size(), static_cast<size_t>(query.limit));
      std::partial_sort(rows.begin(), rows.begin() + keep, rows.end(), cmp);
    }
    if (rows.size() > static_cast<size_t>(query.limit)) {
      rows.resize(query.limit);
    }
    result.selection_rows = std::move(rows);
  }
  return result;
}

std::string QueryTrace::ToString() const {
  std::ostringstream os;
  os << "trace: " << events.size() << " scatter calls, " << retries
     << " retries, " << timeouts << " timeouts, " << hedges << " hedges ("
     << hedge_wins << " won)\n";
  for (const auto& event : events) {
    os << "  [" << event.attempt << "] " << event.physical_table << " -> "
       << event.server;
    if (event.hedge) os << (event.hedge_won ? " [hedge, won]" : " [hedge]");
    os << " (" << event.segments.size() << " segments:";
    for (size_t i = 0; i < event.segments.size(); ++i) {
      os << " " << event.segments[i];
      if (i < event.pick_reasons.size() &&
          event.pick_reasons[i] != "routing-table") {
        os << "<" << event.pick_reasons[i] << ">";
      }
    }
    os << ") " << event.outcome << " " << event.latency_millis << "ms\n";
  }
  return os.str();
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  if (throttled) {
    os << "[THROTTLED: " << error_message << " (retry after "
       << retry_after_millis << "ms)]\n";
  } else if (partial) {
    os << "[PARTIAL: " << error_message << "]\n";
  }
  if (!aggregates.empty()) {
    for (size_t i = 0; i < aggregates.size(); ++i) {
      os << aggregation_names[i] << " = " << ValueToString(aggregates[i])
         << "\n";
    }
  }
  if (!group_rows.empty()) {
    for (const auto& column : group_by_columns) os << column << "\t";
    for (const auto& name : aggregation_names) os << name << "\t";
    os << "\n";
    for (const auto& row : group_rows) {
      for (const auto& key : row.keys) os << ValueToString(key) << "\t";
      for (const auto& value : row.values) os << ValueToString(value) << "\t";
      os << "\n";
    }
  }
  if (!selection_rows.empty()) {
    for (const auto& column : selection_columns) os << column << "\t";
    os << "\n";
    for (const auto& row : selection_rows) {
      for (const auto& value : row) os << ValueToString(value) << "\t";
      os << "\n";
    }
  }
  os << "(docs scanned: " << stats.docs_scanned
     << ", matched: " << stats.docs_matched
     << ", total: " << total_docs
     << ", segments queried: " << stats.segments_queried
     << ", pruned: " << stats.segments_pruned;
  if (stats.used_star_tree) {
    os << ", star-tree records: " << stats.star_tree_records_scanned;
  }
  os << ")";
  if (span.has_value()) {
    os << "\n--- " << (explain_only ? "plan" : "trace") << " ---\n"
       << span->ToString();
    if (!explain_only) {
      os << "--- receipt ---\n" << receipt.ToString();
    }
  }
  return os.str();
}

}  // namespace pinot
