#include "stream/stream.h"

#include <gtest/gtest.h>

namespace pinot {
namespace {

TEST(HashTest, Murmur2Deterministic) {
  EXPECT_EQ(Murmur2("hello"), Murmur2("hello"));
  EXPECT_NE(Murmur2("hello"), Murmur2("hellp"));
}

TEST(HashTest, KafkaPartitionInRangeAndStable) {
  for (int parts : {1, 2, 8, 31}) {
    for (const char* key : {"", "a", "member-12345", "viewer:42"}) {
      const int32_t p = KafkaPartition(key, parts);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, KafkaPartition(key, parts));
    }
  }
}

TEST(HashTest, KafkaPartitionSpreadsKeys) {
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[KafkaPartition("key" + std::to_string(i), 8)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 500);  // Roughly uniform.
    EXPECT_LT(c, 1500);
  }
}

TEST(StreamTopicTest, ProduceAndFetch) {
  SimulatedClock clock;
  StreamTopic topic("events", 2, &clock);
  Row row;
  row.SetLong("x", 1);
  const auto [partition, offset] = topic.Produce("key1", row);
  EXPECT_EQ(offset, 0);
  auto fetched = topic.Fetch(partition, 0, 10);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->size(), 1u);
  EXPECT_EQ((*fetched)[0].key, "key1");
  EXPECT_EQ(std::get<int64_t>((*fetched)[0].row.Get("x")), 1);
}

TEST(StreamTopicTest, OffsetsAreMonotonicPerPartition) {
  SimulatedClock clock;
  StreamTopic topic("events", 1, &clock);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(topic.ProduceToPartition(0, "k", Row()), i);
  }
  EXPECT_EQ(topic.LatestOffset(0), 10);
  EXPECT_EQ(topic.EarliestOffset(0), 0);
}

TEST(StreamTopicTest, FetchRespectsMaxAndEnd) {
  SimulatedClock clock;
  StreamTopic topic("events", 1, &clock);
  for (int i = 0; i < 10; ++i) topic.ProduceToPartition(0, "k", Row());
  auto batch = topic.Fetch(0, 4, 3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_EQ((*batch)[0].offset, 4);
  // Reading at the log end returns empty.
  EXPECT_TRUE(topic.Fetch(0, 10, 5)->empty());
  EXPECT_FALSE(topic.Fetch(5, 0, 1).ok());  // Bad partition.
}

TEST(StreamTopicTest, SameKeyAlwaysSamePartition) {
  SimulatedClock clock;
  StreamTopic topic("events", 8, &clock);
  int first = -1;
  for (int i = 0; i < 5; ++i) {
    const auto [partition, offset] = topic.Produce("member-7", Row());
    if (first < 0) first = partition;
    EXPECT_EQ(partition, first);
  }
  // And it matches the public partition function.
  EXPECT_EQ(first, KafkaPartition("member-7", 8));
}

TEST(StreamTopicTest, RetentionDropsOldMessagesAndAdvancesEarliest) {
  SimulatedClock clock(1000000);
  StreamTopic topic("events", 1, &clock);
  topic.ProduceToPartition(0, "old", Row());
  clock.AdvanceMillis(10000);
  topic.ProduceToPartition(0, "new", Row());
  topic.EnforceRetention(5000);
  EXPECT_EQ(topic.EarliestOffset(0), 1);
  EXPECT_EQ(topic.LatestOffset(0), 2);
  // Reading below the horizon reports OutOfRange (consumer fell behind).
  EXPECT_FALSE(topic.Fetch(0, 0, 10).ok());
  auto ok = topic.Fetch(0, 1, 10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].key, "new");
}

TEST(StreamRegistryTest, GetOrCreate) {
  SimulatedClock clock;
  StreamRegistry registry(&clock);
  EXPECT_EQ(registry.GetTopic("t"), nullptr);
  StreamTopic* topic = registry.GetOrCreateTopic("t", 4);
  EXPECT_EQ(topic->num_partitions(), 4);
  EXPECT_EQ(registry.GetOrCreateTopic("t", 8), topic);  // Existing wins.
  EXPECT_EQ(registry.GetTopic("t"), topic);
}

}  // namespace
}  // namespace pinot
