file(REMOVE_RECURSE
  "CMakeFiles/realtime_integration_test.dir/realtime_integration_test.cc.o"
  "CMakeFiles/realtime_integration_test.dir/realtime_integration_test.cc.o.d"
  "realtime_integration_test"
  "realtime_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
