#include "routing/routing.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace pinot {

std::map<std::string, std::vector<std::string>> QueryableReplicas(
    const TableView& external_view) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& [segment, states] : external_view) {
    std::vector<std::string> servers;
    for (const auto& [instance, state] : states) {
      if (state == SegmentState::kOnline ||
          state == SegmentState::kConsuming) {
        servers.push_back(instance);
      }
    }
    if (!servers.empty()) out.emplace(segment, std::move(servers));
  }
  return out;
}

std::string PickReplica(const std::vector<std::string>& servers,
                        const std::set<std::string>& exclude,
                        const std::function<bool(const std::string&)>& usable,
                        Random* rng) {
  std::vector<const std::string*> candidates;
  for (const auto& server : servers) {
    if (exclude.count(server) > 0) continue;
    if (usable && !usable(server)) continue;
    candidates.push_back(&server);
  }
  if (candidates.empty()) return std::string();
  return *candidates[rng->NextUint64(candidates.size())];
}

std::string PickReplicaAdaptive(
    const std::vector<std::string>& servers,
    const std::set<std::string>& exclude,
    const std::function<bool(const std::string&)>& usable,
    const ServerStatsRegistry* stats, double explore_probability,
    Random* rng) {
  std::vector<const std::string*> candidates;
  for (const auto& server : servers) {
    if (exclude.count(server) > 0) continue;
    if (usable && !usable(server)) continue;
    candidates.push_back(&server);
  }
  if (candidates.empty()) return std::string();
  if (candidates.size() == 1) return *candidates.front();
  if (stats == nullptr || rng->NextBool(explore_probability)) {
    return *candidates[rng->NextUint64(candidates.size())];
  }
  const size_t first = rng->NextUint64(candidates.size());
  size_t second = rng->NextUint64(candidates.size() - 1);
  if (second >= first) ++second;
  const double first_score = stats->ScoreOf(*candidates[first]);
  const double second_score = stats->ScoreOf(*candidates[second]);
  return first_score <= second_score ? *candidates[first]
                                     : *candidates[second];
}

RoutingTable BuildBalancedRoutingTable(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    Random* rng) {
  RoutingTable table;
  std::unordered_map<std::string, int> load;
  // Iterate segments in a shuffled order so ties don't always favour the
  // same replica.
  std::vector<const std::pair<const std::string, std::vector<std::string>>*>
      items;
  for (const auto& entry : segment_servers) items.push_back(&entry);
  std::shuffle(items.begin(), items.end(), rng->engine());
  for (const auto* entry : items) {
    const auto& [segment, servers] = *entry;
    const std::string* best = nullptr;
    int best_load = INT32_MAX;
    for (const auto& server : servers) {
      const int l = load[server];
      if (l < best_load) {
        best_load = l;
        best = &server;
      }
    }
    assert(best != nullptr);
    table.server_segments[*best].push_back(segment);
    ++load[*best];
  }
  for (auto& [server, segments] : table.server_segments) {
    std::sort(segments.begin(), segments.end());
  }
  return table;
}

RoutingTable BuildUpsertRoutingTable(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    const std::map<std::string, int32_t>& segment_partitions, Random* rng) {
  // Group segments by stream partition. Partition -1 (metadata missing,
  // e.g. mid-transition) degrades to one group per segment — still correct
  // per segment, just without the cross-segment consistency guarantee that
  // proper partition metadata provides.
  std::map<int64_t, std::vector<const std::string*>> groups;
  int64_t solo = -1;
  for (const auto& [segment, servers] : segment_servers) {
    auto it = segment_partitions.find(segment);
    const int32_t partition = it == segment_partitions.end() ? -1 : it->second;
    if (partition >= 0) {
      groups[partition].push_back(&segment);
    } else {
      // Distinct negative keys below -1 keep solo segments apart.
      groups[solo--].push_back(&segment);
    }
  }

  RoutingTable table;
  for (auto& [partition, segments] : groups) {
    // One server from the intersection of the group's replica sets. The
    // controller keeps a partition's lineage on one instance set, so the
    // intersection is normally every replica of the group.
    std::set<std::string> common(segment_servers.at(*segments.front()).begin(),
                                 segment_servers.at(*segments.front()).end());
    for (size_t i = 1; i < segments.size() && !common.empty(); ++i) {
      const auto& servers = segment_servers.at(*segments[i]);
      std::set<std::string> next;
      for (const auto& server : servers) {
        if (common.count(server) > 0) next.insert(server);
      }
      common = std::move(next);
    }
    if (!common.empty()) {
      std::vector<std::string> candidates(common.begin(), common.end());
      const std::string& picked =
          candidates[rng->NextUint64(candidates.size())];
      auto& assigned = table.server_segments[picked];
      for (const std::string* segment : segments) {
        assigned.push_back(*segment);
      }
    } else {
      // Mid-rebalance: no single server covers the whole group. Fall back
      // to per-segment picks; partial-partition consistency is lost until
      // the external view converges, matching production Pinot's behavior
      // when strictReplicaGroup routing cannot be honored.
      for (const std::string* segment : segments) {
        const auto& servers = segment_servers.at(*segment);
        table.server_segments[servers[rng->NextUint64(servers.size())]]
            .push_back(*segment);
      }
    }
  }
  for (auto& [server, segments] : table.server_segments) {
    std::sort(segments.begin(), segments.end());
  }
  return table;
}

namespace {

// PickWeightedRandomReplica (Algorithm 1): chooses among the candidate
// instances with probability inversely proportional to the load already
// assigned in this routing table.
const std::string* PickWeightedRandomReplica(
    const std::unordered_map<std::string, int>& load,
    const std::vector<const std::string*>& candidates, Random* rng) {
  int max_load = 0;
  for (const auto* server : candidates) {
    auto it = load.find(*server);
    if (it != load.end()) max_load = std::max(max_load, it->second);
  }
  std::vector<double> weights;
  double total = 0;
  for (const auto* server : candidates) {
    auto it = load.find(*server);
    const int l = it == load.end() ? 0 : it->second;
    const double w = static_cast<double>(max_load - l + 1);
    weights.push_back(w);
    total += w;
  }
  double r = rng->NextDouble() * total;
  for (size_t i = 0; i < candidates.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return candidates[i];
  }
  return candidates.back();
}

}  // namespace

RoutingTable GenerateRoutingTable(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    int target_server_count, Random* rng) {
  // Build IS (instance -> segments) and the instance list I.
  std::unordered_map<std::string, std::vector<const std::string*>>
      instance_segments;
  std::vector<std::string> instances;
  for (const auto& [segment, servers] : segment_servers) {
    for (const auto& server : servers) {
      auto [it, inserted] = instance_segments.try_emplace(server);
      if (inserted) instances.push_back(server);
      it->second.push_back(&segment);
    }
  }
  std::sort(instances.begin(), instances.end());

  std::set<std::string> orphan_segments;  // S_orphan
  for (const auto& [segment, servers] : segment_servers) {
    orphan_segments.insert(segment);
  }
  std::unordered_set<std::string> used_instances;  // I_used

  auto absorb_instance = [&](const std::string& instance) {
    if (!used_instances.insert(instance).second) return;
    for (const std::string* segment : instance_segments[instance]) {
      orphan_segments.erase(*segment);
    }
  };

  if (static_cast<int>(instances.size()) <= target_server_count) {
    for (const auto& instance : instances) absorb_instance(instance);
    orphan_segments.clear();
  } else {
    while (static_cast<int>(used_instances.size()) < target_server_count) {
      absorb_instance(instances[rng->NextUint64(instances.size())]);
    }
  }
  // Add servers until every orphan segment is covered.
  while (!orphan_segments.empty()) {
    const std::string& first = *orphan_segments.begin();
    const auto& candidates = segment_servers.at(first);
    absorb_instance(candidates[rng->NextUint64(candidates.size())]);
  }

  // Q_si: segments in ascending order of usable instance count.
  struct SegmentCandidates {
    const std::string* segment;
    std::vector<const std::string*> instances;
  };
  std::vector<SegmentCandidates> queue;
  queue.reserve(segment_servers.size());
  for (const auto& [segment, servers] : segment_servers) {
    SegmentCandidates sc;
    sc.segment = &segment;
    for (const auto& server : servers) {
      if (used_instances.count(server) > 0) sc.instances.push_back(&server);
    }
    assert(!sc.instances.empty());
    queue.push_back(std::move(sc));
  }
  std::stable_sort(queue.begin(), queue.end(),
                   [](const SegmentCandidates& a, const SegmentCandidates& b) {
                     return a.instances.size() < b.instances.size();
                   });

  RoutingTable table;
  std::unordered_map<std::string, int> load;
  for (const auto& sc : queue) {
    const std::string* picked =
        PickWeightedRandomReplica(load, sc.instances, rng);
    table.server_segments[*picked].push_back(*sc.segment);
    ++load[*picked];
  }
  for (auto& [server, segments] : table.server_segments) {
    std::sort(segments.begin(), segments.end());
  }
  return table;
}

double RoutingTableMetric(const RoutingTable& table) {
  if (table.server_segments.empty()) return 0;
  double mean = 0;
  for (const auto& [server, segments] : table.server_segments) {
    mean += static_cast<double>(segments.size());
  }
  mean /= static_cast<double>(table.server_segments.size());
  double variance = 0;
  for (const auto& [server, segments] : table.server_segments) {
    const double d = static_cast<double>(segments.size()) - mean;
    variance += d * d;
  }
  return variance / static_cast<double>(table.server_segments.size());
}

std::vector<RoutingTable> GenerateRoutingTables(
    const std::map<std::string, std::vector<std::string>>& segment_servers,
    const GeneratedRoutingOptions& options, Random* rng) {
  if (segment_servers.empty()) return {};
  // Max-heap of (metric, table) keeping the C lowest-metric tables.
  using HeapEntry = std::pair<double, RoutingTable>;
  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    return a.first < b.first;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);

  for (int i = 0; i < options.tables_to_keep; ++i) {
    RoutingTable table = GenerateRoutingTable(
        segment_servers, options.target_server_count, rng);
    const double metric = RoutingTableMetric(table);
    heap.emplace(metric, std::move(table));
  }
  for (int i = options.tables_to_keep; i < options.tables_to_generate; ++i) {
    RoutingTable table = GenerateRoutingTable(
        segment_servers, options.target_server_count, rng);
    const double metric = RoutingTableMetric(table);
    if (metric <= heap.top().first) {
      heap.pop();
      heap.emplace(metric, std::move(table));
    }
  }

  std::vector<RoutingTable> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(std::move(const_cast<HeapEntry&>(heap.top()).second));
    heap.pop();
  }
  std::reverse(out.begin(), out.end());  // Best (lowest metric) first.
  return out;
}

}  // namespace pinot
