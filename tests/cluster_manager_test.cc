#include "cluster/cluster_manager.h"

#include <gtest/gtest.h>

namespace pinot {
namespace {

/// Records every transition and can be told to fail.
class FakeParticipant : public StateTransitionHandler {
 public:
  struct Transition {
    std::string table, segment;
    SegmentState from, to;
  };

  Status OnSegmentStateTransition(const std::string& table,
                                  const std::string& segment,
                                  SegmentState from, SegmentState to) override {
    transitions.push_back({table, segment, from, to});
    return fail_next ? Status::Internal("injected failure") : Status::OK();
  }
  Status OnUserMessage(const std::string& type,
                       const std::string& payload) override {
    messages.emplace_back(type, payload);
    return Status::OK();
  }

  std::vector<Transition> transitions;
  std::vector<std::pair<std::string, std::string>> messages;
  bool fail_next = false;
};

TEST(ClusterManagerTest, OfflineToOnlineTransition) {
  ClusterManager cm;
  FakeParticipant s1;
  cm.RegisterInstance("s1", {"server"}, &s1);
  cm.SetSegmentIdealState("t", "seg1", {{"s1", SegmentState::kOnline}});
  ASSERT_EQ(s1.transitions.size(), 1u);
  EXPECT_EQ(s1.transitions[0].from, SegmentState::kOffline);
  EXPECT_EQ(s1.transitions[0].to, SegmentState::kOnline);
  const TableView view = cm.GetExternalView("t");
  ASSERT_EQ(view.count("seg1"), 1u);
  EXPECT_EQ(view.at("seg1").at("s1"), SegmentState::kOnline);
}

TEST(ClusterManagerTest, ConsumingToOnline) {
  ClusterManager cm;
  FakeParticipant s1;
  cm.RegisterInstance("s1", {"server"}, &s1);
  cm.SetSegmentIdealState("t", "seg1", {{"s1", SegmentState::kConsuming}});
  cm.SetSegmentIdealState("t", "seg1", {{"s1", SegmentState::kOnline}});
  ASSERT_EQ(s1.transitions.size(), 2u);
  EXPECT_EQ(s1.transitions[1].from, SegmentState::kConsuming);
  EXPECT_EQ(s1.transitions[1].to, SegmentState::kOnline);
}

TEST(ClusterManagerTest, RemoveSegmentDispatchesDrop) {
  ClusterManager cm;
  FakeParticipant s1;
  cm.RegisterInstance("s1", {"server"}, &s1);
  cm.SetSegmentIdealState("t", "seg1", {{"s1", SegmentState::kOnline}});
  cm.RemoveSegment("t", "seg1");
  ASSERT_EQ(s1.transitions.size(), 2u);
  EXPECT_EQ(s1.transitions[1].to, SegmentState::kDropped);
  EXPECT_TRUE(cm.GetExternalView("t").empty());
}

TEST(ClusterManagerTest, FailedTransitionLeavesReplicaOutOfView) {
  ClusterManager cm;
  FakeParticipant s1, s2;
  cm.RegisterInstance("s1", {"server"}, &s1);
  cm.RegisterInstance("s2", {"server"}, &s2);
  s1.fail_next = true;
  cm.SetSegmentIdealState("t", "seg1", {{"s1", SegmentState::kOnline},
                                        {"s2", SegmentState::kOnline}});
  const TableView view = cm.GetExternalView("t");
  ASSERT_EQ(view.count("seg1"), 1u);
  EXPECT_EQ(view.at("seg1").count("s1"), 0u);
  EXPECT_EQ(view.at("seg1").at("s2"), SegmentState::kOnline);
}

TEST(ClusterManagerTest, DeadInstanceRemovedFromViewAndReplayedOnRevival) {
  ClusterManager cm;
  FakeParticipant s1;
  cm.RegisterInstance("s1", {"server"}, &s1);
  cm.SetSegmentIdealState("t", "seg1", {{"s1", SegmentState::kOnline}});
  int view_changes = 0;
  cm.WatchExternalView([&view_changes](const std::string&) { ++view_changes; });

  cm.SetInstanceAlive("s1", false);
  EXPECT_TRUE(cm.GetExternalView("t").empty());
  EXPECT_GE(view_changes, 1);

  // Revival replays the ideal state (OFFLINE -> ONLINE again).
  cm.SetInstanceAlive("s1", true);
  ASSERT_EQ(s1.transitions.size(), 2u);
  EXPECT_EQ(s1.transitions[1].to, SegmentState::kOnline);
  EXPECT_EQ(cm.GetExternalView("t").at("seg1").at("s1"),
            SegmentState::kOnline);
}

TEST(ClusterManagerTest, TagsAndLiveness) {
  ClusterManager cm;
  FakeParticipant s1, s2;
  cm.RegisterInstance("s1", {"server", "tenantA"}, &s1);
  cm.RegisterInstance("s2", {"server", "tenantB"}, &s2);
  EXPECT_EQ(cm.GetInstancesWithTag("server").size(), 2u);
  EXPECT_EQ(cm.GetInstancesWithTag("tenantA"),
            (std::vector<std::string>{"s1"}));
  cm.SetInstanceAlive("s1", false);
  EXPECT_EQ(cm.GetAliveInstancesWithTag("server"),
            (std::vector<std::string>{"s2"}));
  EXPECT_EQ(cm.GetInstancesWithTag("server").size(), 2u);
}

TEST(ClusterManagerTest, LeaderElectionAndFailover) {
  ClusterManager cm;
  std::vector<std::pair<std::string, bool>> events;
  cm.RegisterController("c0", [&](bool l) { events.emplace_back("c0", l); });
  cm.RegisterController("c1", [&](bool l) { events.emplace_back("c1", l); });
  EXPECT_EQ(cm.leader(), "c0");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (std::pair<std::string, bool>{"c0", true}));

  cm.SetInstanceAlive("c0", false);
  EXPECT_EQ(cm.leader(), "c1");
  // c0 lost leadership, c1 gained it.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1], (std::pair<std::string, bool>{"c0", false}));
  EXPECT_EQ(events[2], (std::pair<std::string, bool>{"c1", true}));

  // The original leader coming back does not steal leadership.
  cm.SetInstanceAlive("c0", true);
  EXPECT_EQ(cm.leader(), "c1");
}

TEST(ClusterManagerTest, UserMessages) {
  ClusterManager cm;
  FakeParticipant s1, s2;
  cm.RegisterInstance("s1", {"server", "tenantA"}, &s1);
  cm.RegisterInstance("s2", {"server", "tenantB"}, &s2);
  ASSERT_TRUE(cm.SendUserMessage("s1", "reload", "payload").ok());
  ASSERT_EQ(s1.messages.size(), 1u);
  EXPECT_EQ(s1.messages[0].first, "reload");
  EXPECT_FALSE(cm.SendUserMessage("nope", "reload", "").ok());

  cm.BroadcastUserMessage("server", "ping", "x");
  EXPECT_EQ(s1.messages.size(), 2u);
  EXPECT_EQ(s2.messages.size(), 1u);

  cm.SetInstanceAlive("s2", false);
  EXPECT_FALSE(cm.SendUserMessage("s2", "reload", "").ok());
}

TEST(ClusterManagerTest, ExternalViewWatcherFiresPerTransition) {
  ClusterManager cm;
  FakeParticipant s1;
  cm.RegisterInstance("s1", {"server"}, &s1);
  std::vector<std::string> tables;
  const int handle =
      cm.WatchExternalView([&tables](const std::string& t) { tables.push_back(t); });
  cm.SetSegmentIdealState("t1", "seg", {{"s1", SegmentState::kOnline}});
  cm.SetSegmentIdealState("t2", "seg", {{"s1", SegmentState::kOnline}});
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], "t1");
  cm.UnwatchExternalView(handle);
  cm.SetSegmentIdealState("t3", "seg", {{"s1", SegmentState::kOnline}});
  EXPECT_EQ(tables.size(), 2u);
}

}  // namespace
}  // namespace pinot
