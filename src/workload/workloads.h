#ifndef PINOT_WORKLOAD_WORKLOADS_H_
#define PINOT_WORKLOAD_WORKLOADS_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "data/row.h"
#include "data/schema.h"
#include "segment/segment_builder.h"

namespace pinot {

/// A synthetic reproduction of one of the paper's production scenarios
/// (section 6): data rows whose dimension-value distributions match the
/// paper's description (long-tail Zipf dimensions, high-cardinality member/
/// item identifiers) plus a sampled query set ("queries were sampled to
/// have tens of thousands of different queries in order to simulate a
/// production environment").
struct Workload {
  std::string name;
  Schema schema;
  std::vector<Row> rows;
  std::vector<std::string> queries;  // PQL.
  // The index configuration Pinot uses in this scenario (sort columns,
  // inverted indexes, star-tree), per the paper's description.
  SegmentBuildConfig pinot_config;
  // Partition function parameters for the partition-aware variant
  // (impression-discounting scenario only).
  std::string partition_column;
  int num_partitions = 0;
};

struct WorkloadOptions {
  uint32_t num_rows = 200000;
  int num_queries = 2000;
  uint64_t seed = 42;
};

/// Anomaly-detection / ad hoc reporting on multidimensional business
/// metrics (Figures 11-13): ~7 Zipf dimensions + time, two metrics;
/// queries mix automated monitoring aggregations with ad hoc drill-downs
/// (1-3 predicates, optional group-by).
Workload MakeAnomalyWorkload(const WorkloadOptions& options);

/// "Share analytics" (Figure 14): every query filters on a
/// high-cardinality shared-item identifier; Pinot physically sorts on it
/// while Druid relies on per-dimension inverted indexes.
Workload MakeShareAnalyticsWorkload(const WorkloadOptions& options);

/// "Who viewed my profile" (Figure 15): every query filters on vieweeId
/// with simple aggregations and a few facets; used to compare the sorted
/// column against a bitmap inverted index on the same column.
Workload MakeWvmpWorkload(const WorkloadOptions& options);

/// Impression discounting (Figure 16): high-throughput point-ish queries
/// fetching the items a member has already seen; the table is partitioned
/// on memberId with the Kafka-compatible partition function so the broker
/// can prune servers.
Workload MakeImpressionWorkload(const WorkloadOptions& options);

}  // namespace pinot

#endif  // PINOT_WORKLOAD_WORKLOADS_H_
