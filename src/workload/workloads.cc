#include "workload/workloads.h"

#include <cassert>

#include "common/hash.h"

namespace pinot {

namespace {

std::vector<std::string> MakeNames(const std::string& prefix, int n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

}  // namespace

Workload MakeAnomalyWorkload(const WorkloadOptions& options) {
  Workload w;
  w.name = "anomaly";
  auto schema = Schema::Make({
      FieldSpec::Dimension("metricName", DataType::kString),
      FieldSpec::Dimension("country", DataType::kString),
      FieldSpec::Dimension("platform", DataType::kString),
      FieldSpec::Dimension("browser", DataType::kString),
      FieldSpec::Dimension("application", DataType::kString),
      FieldSpec::Dimension("pageType", DataType::kString),
      FieldSpec::Metric("value", DataType::kDouble),
      FieldSpec::Metric("count", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  assert(schema.ok());
  w.schema = *schema;

  // Cardinalities sized so the dimension cube is dense relative to the row
  // count (production business-metric data has many rows per combination,
  // which is what makes preaggregation effective; Figure 13).
  const auto metrics = MakeNames("metric_", 60);
  const auto countries = MakeNames("country_", 20);
  const auto platforms = MakeNames("platform_", 3);
  const auto browsers = MakeNames("browser_", 5);
  const auto applications = MakeNames("app_", 12);
  const auto page_types = MakeNames("page_", 8);
  constexpr int64_t kFirstDay = 17000;
  constexpr int kNumDays = 14;

  Random rng(options.seed);
  ZipfGenerator metric_gen(metrics.size(), 1.1);
  ZipfGenerator country_gen(countries.size(), 1.2);
  ZipfGenerator app_gen(applications.size(), 1.0);
  ZipfGenerator page_gen(page_types.size(), 1.1);

  w.rows.reserve(options.num_rows);
  for (uint32_t i = 0; i < options.num_rows; ++i) {
    Row row;
    row.SetString("metricName", metrics[metric_gen.Next(rng)]);
    row.SetString("country", countries[country_gen.Next(rng)]);
    row.SetString("platform", platforms[rng.NextUint64(platforms.size())]);
    row.SetString("browser", browsers[rng.NextUint64(browsers.size())]);
    row.SetString("application", applications[app_gen.Next(rng)]);
    row.SetString("pageType", page_types[page_gen.Next(rng)]);
    row.SetDouble("value", rng.NextDouble() * 1000);
    row.SetLong("count", 1 + static_cast<int64_t>(rng.NextUint64(50)));
    row.SetLong("day", kFirstDay + static_cast<int64_t>(
                                       rng.NextUint64(kNumDays)));
    w.rows.push_back(std::move(row));
  }

  // Query mix: ~60% automated monitoring (fixed shape, varying metric),
  // ~40% ad hoc drill-down with extra predicates and group-bys.
  w.queries.reserve(options.num_queries);
  for (int q = 0; q < options.num_queries; ++q) {
    const std::string metric = metrics[metric_gen.Next(rng)];
    const int64_t day_lo =
        kFirstDay + static_cast<int64_t>(rng.NextUint64(kNumDays - 3));
    const int64_t day_hi = day_lo + 1 + static_cast<int64_t>(rng.NextUint64(3));
    if (rng.NextBool(0.6)) {
      // Automated monitoring: per-day series for one metric.
      w.queries.push_back(
          "SELECT sum(value), sum(count) FROM anomaly WHERE metricName = '" +
          metric + "' AND day BETWEEN " + std::to_string(day_lo) + " AND " +
          std::to_string(day_hi) + " GROUP BY day TOP 31");
    } else {
      // Ad hoc root-cause drill-down.
      std::string pql = "SELECT sum(value) FROM anomaly WHERE metricName = '" +
                        metric + "'";
      if (rng.NextBool(0.6)) {
        pql += " AND country = '" + countries[country_gen.Next(rng)] + "'";
      }
      if (rng.NextBool(0.4)) {
        pql += " AND platform = '" +
               platforms[rng.NextUint64(platforms.size())] + "'";
      }
      pql += " AND day BETWEEN " + std::to_string(day_lo) + " AND " +
             std::to_string(day_hi);
      static const char* kGroupBys[] = {"country", "browser", "application",
                                        "pageType"};
      pql += std::string(" GROUP BY ") + kGroupBys[rng.NextUint64(4)] +
             " TOP 10";
      w.queries.push_back(std::move(pql));
    }
  }

  w.pinot_config.inverted_index_columns = {"metricName", "country",
                                           "platform"};
  // Split order: the always-filtered column first, the group-by/time
  // column last — stars on the middle dimensions then collapse everything
  // between the filter and the per-day leaves.
  w.pinot_config.star_tree.dimensions = {"metricName", "country", "platform",
                                         "browser", "application", "pageType",
                                         "day"};
  w.pinot_config.star_tree.metrics = {"value", "count"};
  w.pinot_config.star_tree.max_leaf_records = 100;
  return w;
}

Workload MakeShareAnalyticsWorkload(const WorkloadOptions& options) {
  Workload w;
  w.name = "shares";
  auto schema = Schema::Make({
      FieldSpec::Dimension("itemId", DataType::kLong),
      FieldSpec::Dimension("viewerRegion", DataType::kString),
      FieldSpec::Dimension("viewerSeniority", DataType::kString),
      FieldSpec::Dimension("viewerIndustry", DataType::kString),
      FieldSpec::Metric("views", DataType::kLong),
      FieldSpec::Metric("clicks", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  assert(schema.ok());
  w.schema = *schema;

  const uint64_t num_items = std::max<uint64_t>(options.num_rows / 40, 100);
  const auto regions = MakeNames("region_", 20);
  const auto seniorities = MakeNames("seniority_", 8);
  const auto industries = MakeNames("industry_", 50);

  Random rng(options.seed);
  // Item popularity is heavily long-tailed (viral shares).
  ZipfGenerator item_gen(num_items, 1.05);
  ZipfGenerator industry_gen(industries.size(), 1.0);

  w.rows.reserve(options.num_rows);
  for (uint32_t i = 0; i < options.num_rows; ++i) {
    Row row;
    row.SetLong("itemId", static_cast<int64_t>(item_gen.Next(rng)));
    row.SetString("viewerRegion", regions[rng.NextUint64(regions.size())]);
    row.SetString("viewerSeniority",
                  seniorities[rng.NextUint64(seniorities.size())]);
    row.SetString("viewerIndustry", industries[industry_gen.Next(rng)]);
    row.SetLong("views", 1);
    row.SetLong("clicks", rng.NextBool(0.1) ? 1 : 0);
    row.SetLong("day", 17000 + static_cast<int64_t>(rng.NextUint64(30)));
    w.rows.push_back(std::move(row));
  }

  // Every query is keyed by an item (the piece of shared content being
  // analyzed), with a simple aggregation and at most one facet.
  w.queries.reserve(options.num_queries);
  for (int q = 0; q < options.num_queries; ++q) {
    const int64_t item = static_cast<int64_t>(item_gen.Next(rng));
    const double kind = rng.NextDouble();
    if (kind < 0.4) {
      w.queries.push_back(
          "SELECT sum(views), sum(clicks) FROM shares WHERE itemId = " +
          std::to_string(item));
    } else if (kind < 0.8) {
      static const char* kFacets[] = {"viewerRegion", "viewerSeniority",
                                      "viewerIndustry"};
      w.queries.push_back("SELECT sum(views) FROM shares WHERE itemId = " +
                          std::to_string(item) + " GROUP BY " +
                          kFacets[rng.NextUint64(3)] + " TOP 10");
    } else {
      w.queries.push_back("SELECT count(*) FROM shares WHERE itemId = " +
                          std::to_string(item) + " AND viewerRegion = '" +
                          regions[rng.NextUint64(regions.size())] + "'");
    }
  }

  // "Data is sorted based on the shared item identifier" (section 6); no
  // inverted indexes are needed on the facets.
  w.pinot_config.sort_columns = {"itemId"};
  return w;
}

Workload MakeWvmpWorkload(const WorkloadOptions& options) {
  Workload w;
  w.name = "wvmp";
  auto schema = Schema::Make({
      FieldSpec::Dimension("vieweeId", DataType::kLong),
      FieldSpec::Dimension("viewerId", DataType::kLong),
      FieldSpec::Dimension("viewerRegion", DataType::kString),
      FieldSpec::Dimension("viewerSeniority", DataType::kString),
      FieldSpec::Dimension("viewerIndustry", DataType::kString),
      FieldSpec::Metric("views", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  assert(schema.ok());
  w.schema = *schema;

  const uint64_t num_members = std::max<uint64_t>(options.num_rows / 30, 100);
  const auto regions = MakeNames("region_", 25);
  const auto seniorities = MakeNames("seniority_", 8);
  const auto industries = MakeNames("industry_", 60);

  Random rng(options.seed);
  // Profile-view counts are long-tailed (influencers vs everyone else).
  ZipfGenerator viewee_gen(num_members, 0.99);
  ZipfGenerator industry_gen(industries.size(), 1.0);

  w.rows.reserve(options.num_rows);
  for (uint32_t i = 0; i < options.num_rows; ++i) {
    Row row;
    row.SetLong("vieweeId", static_cast<int64_t>(viewee_gen.Next(rng)));
    row.SetLong("viewerId",
                static_cast<int64_t>(rng.NextUint64(num_members)));
    row.SetString("viewerRegion", regions[rng.NextUint64(regions.size())]);
    row.SetString("viewerSeniority",
                  seniorities[rng.NextUint64(seniorities.size())]);
    row.SetString("viewerIndustry", industries[industry_gen.Next(rng)]);
    row.SetLong("views", 1);
    row.SetLong("day", 17000 + static_cast<int64_t>(rng.NextUint64(90)));
    w.rows.push_back(std::move(row));
  }

  // "Simple aggregations (sum of clicks/views, distinct count of viewers)
  // with a few facets such as region, seniority or industry for ... a
  // given user's profile views" (section 6).
  w.queries.reserve(options.num_queries);
  for (int q = 0; q < options.num_queries; ++q) {
    const int64_t viewee = static_cast<int64_t>(viewee_gen.Next(rng));
    const double kind = rng.NextDouble();
    if (kind < 0.35) {
      w.queries.push_back("SELECT count(*) FROM wvmp WHERE vieweeId = " +
                          std::to_string(viewee));
    } else if (kind < 0.55) {
      w.queries.push_back(
          "SELECT distinctcount(viewerId) FROM wvmp WHERE vieweeId = " +
          std::to_string(viewee));
    } else {
      static const char* kFacets[] = {"viewerRegion", "viewerSeniority",
                                      "viewerIndustry"};
      w.queries.push_back("SELECT sum(views) FROM wvmp WHERE vieweeId = " +
                          std::to_string(viewee) + " GROUP BY " +
                          kFacets[rng.NextUint64(3)] + " TOP 10");
    }
  }

  w.pinot_config.sort_columns = {"vieweeId"};
  return w;
}

Workload MakeImpressionWorkload(const WorkloadOptions& options) {
  Workload w;
  w.name = "impressions";
  auto schema = Schema::Make({
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Dimension("itemId", DataType::kLong),
      FieldSpec::Dimension("channel", DataType::kString),
      FieldSpec::Metric("impressions", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  assert(schema.ok());
  w.schema = *schema;

  const uint64_t num_members = std::max<uint64_t>(options.num_rows / 50, 100);
  const uint64_t num_items = std::max<uint64_t>(options.num_rows / 10, 1000);
  const auto channels = MakeNames("channel_", 5);

  Random rng(options.seed);
  ZipfGenerator member_gen(num_members, 0.9);
  ZipfGenerator item_gen(num_items, 1.1);

  w.rows.reserve(options.num_rows);
  for (uint32_t i = 0; i < options.num_rows; ++i) {
    Row row;
    row.SetLong("memberId", static_cast<int64_t>(member_gen.Next(rng)));
    row.SetLong("itemId", static_cast<int64_t>(item_gen.Next(rng)));
    row.SetString("channel", channels[rng.NextUint64(channels.size())]);
    row.SetLong("impressions", 1);
    row.SetLong("day", 17000 + static_cast<int64_t>(rng.NextUint64(7)));
    w.rows.push_back(std::move(row));
  }

  // "Every news feed view sends several queries to Pinot to fetch the list
  // of items that have been seen by a user" (section 6): high-throughput
  // per-member item lookups plus a small share of per-member counts.
  w.queries.reserve(options.num_queries);
  for (int q = 0; q < options.num_queries; ++q) {
    const int64_t member = static_cast<int64_t>(member_gen.Next(rng));
    if (rng.NextBool(0.85)) {
      w.queries.push_back(
          "SELECT sum(impressions) FROM impressions WHERE memberId = " +
          std::to_string(member) + " GROUP BY itemId TOP 100");
    } else {
      w.queries.push_back(
          "SELECT count(*) FROM impressions WHERE memberId = " +
          std::to_string(member));
    }
  }

  w.pinot_config.sort_columns = {"memberId"};
  w.partition_column = "memberId";
  w.num_partitions = 8;
  return w;
}

}  // namespace pinot
