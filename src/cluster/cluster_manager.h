#ifndef PINOT_CLUSTER_CLUSTER_MANAGER_H_
#define PINOT_CLUSTER_CLUSTER_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace pinot {

/// Segment states of the Pinot state machine (paper Figure 3).
enum class SegmentState { kOffline, kConsuming, kOnline, kDropped };

const char* SegmentStateToString(SegmentState state);

/// Implemented by servers: invoked by the cluster manager to execute a
/// state transition (e.g. OFFLINE -> ONLINE fetches and loads the segment;
/// paper Figure 4).
class StateTransitionHandler {
 public:
  virtual ~StateTransitionHandler() = default;
  virtual Status OnSegmentStateTransition(const std::string& table,
                                          const std::string& segment,
                                          SegmentState from,
                                          SegmentState to) = 0;

  /// Helix-style user-defined message (used for table reloads and
  /// on-demand index creation, paper sections 4.1 / 5.2).
  virtual Status OnUserMessage(const std::string& type,
                               const std::string& payload) {
    (void)type;
    (void)payload;
    return Status::NotImplemented("no user-message handler");
  }
};

/// instance id -> state, for one segment.
using InstanceStates = std::map<std::string, SegmentState>;
/// segment -> instance states, for one table.
using TableView = std::map<std::string, InstanceStates>;

/// In-process reproduction of Apache Helix as Pinot uses it (paper sections
/// 3.2-3.3): an authoritative *ideal state* owned by controllers, an
/// *external view* reflecting what servers actually did, state-machine
/// transition dispatch to participants, liveness, tags for tenant grouping,
/// and single-master controller leader election.
///
/// Transition dispatch is synchronous on the mutating caller's thread;
/// external-view watchers (brokers) fire after each applied transition,
/// which reproduces the routing-table refresh flow of section 3.3.2.
class ClusterManager {
 public:
  // --- Instances -----------------------------------------------------------

  /// Registers a participant. `handler` may be null (e.g. broker instances
  /// that never host segments).
  void RegisterInstance(const std::string& instance,
                        const std::vector<std::string>& tags,
                        StateTransitionHandler* handler);

  /// Simulates instance death/recovery. Death removes the instance from
  /// every external view (watchers fire); recovery replays the ideal state
  /// onto the instance, as Helix does when a participant reconnects.
  void SetInstanceAlive(const std::string& instance, bool alive);
  bool IsInstanceAlive(const std::string& instance) const;

  /// Simulates a network partition: the instance stays registered and its
  /// segments remain in every external view (no watcher fires, so brokers
  /// keep routing to it), but calls to it fail. Unlike SetInstanceAlive
  /// this exercises the *in-flight* failure path rather than the
  /// routing-rebuild path.
  void SetInstanceReachable(const std::string& instance, bool reachable);
  /// Alive and not partitioned: safe to send a query to.
  bool IsInstanceReachable(const std::string& instance) const;

  std::vector<std::string> GetInstancesWithTag(const std::string& tag) const;
  std::vector<std::string> GetAliveInstancesWithTag(
      const std::string& tag) const;

  // --- Ideal state / external view ----------------------------------------

  /// Sets the desired replica states for one segment and dispatches the
  /// transitions needed to converge live instances.
  void SetSegmentIdealState(const std::string& table,
                            const std::string& segment,
                            const InstanceStates& desired);

  /// Removes a segment entirely (dispatches -> DROPPED transitions).
  void RemoveSegment(const std::string& table, const std::string& segment);

  TableView GetIdealState(const std::string& table) const;
  TableView GetExternalView(const std::string& table) const;
  std::vector<std::string> GetTables() const;

  /// Registers a callback fired whenever any table's external view changes
  /// (brokers use this to rebuild routing tables). Returns a handle.
  int WatchExternalView(std::function<void(const std::string& table)> cb);
  void UnwatchExternalView(int handle);

  /// Delivers a user-defined message to one instance (NotFound/Unavailable
  /// when missing or dead).
  Status SendUserMessage(const std::string& instance, const std::string& type,
                         const std::string& payload);

  /// Delivers a user-defined message to every alive instance with `tag`.
  void BroadcastUserMessage(const std::string& tag, const std::string& type,
                            const std::string& payload);

  // --- Controller leadership ------------------------------------------------

  /// Registers a controller for leader election; the first registered (or
  /// the next alive one after a failure) becomes leader. `on_leadership`
  /// is invoked with true/false as leadership is gained/lost.
  void RegisterController(const std::string& controller,
                          std::function<void(bool)> on_leadership);
  void DeregisterController(const std::string& controller);
  std::string leader() const;

 private:
  struct Instance {
    std::vector<std::string> tags;
    StateTransitionHandler* handler = nullptr;
    bool alive = true;
    bool reachable = true;  // False simulates a network partition.
  };
  struct Controller {
    std::string id;
    std::function<void(bool)> on_leadership;
  };

  struct PendingTransition {
    std::string table;
    std::string segment;
    std::string instance;
    SegmentState from;
    SegmentState to;
  };

  // Computes the legal transition path of Figure 3 from `from` to `to`.
  static std::vector<SegmentState> TransitionPath(SegmentState from,
                                                  SegmentState to);

  // Diffs ideal vs external for (table, segment, instance); appends needed
  // hops. Caller holds mutex_.
  void PlanTransitionsLocked(const std::string& table,
                             const std::string& segment,
                             std::vector<PendingTransition>* plan);

  void ExecuteTransitions(std::vector<PendingTransition> plan);
  void NotifyViewWatchers(const std::string& table);
  void ElectLeaderLocked(std::vector<std::function<void()>>* callbacks);

  mutable std::mutex mutex_;
  std::map<std::string, Instance> instances_;
  std::map<std::string, TableView> ideal_state_;    // table -> view
  std::map<std::string, TableView> external_view_;  // table -> view
  std::vector<std::pair<int, std::function<void(const std::string&)>>>
      view_watchers_;
  int next_watch_handle_ = 1;
  std::vector<Controller> controllers_;
  std::string leader_;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_CLUSTER_MANAGER_H_
