#include "bitmap/roaring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"

namespace pinot {
namespace {

TEST(RoaringBitmapTest, EmptyBitmap) {
  RoaringBitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_TRUE(bm.ToVector().empty());
}

TEST(RoaringBitmapTest, AddAndContains) {
  RoaringBitmap bm;
  bm.Add(5);
  bm.Add(100000);
  bm.Add(5);  // Duplicate.
  EXPECT_EQ(bm.Cardinality(), 2u);
  EXPECT_TRUE(bm.Contains(5));
  EXPECT_TRUE(bm.Contains(100000));
  EXPECT_FALSE(bm.Contains(6));
  EXPECT_EQ(bm.Minimum(), 5u);
  EXPECT_EQ(bm.Maximum(), 100000u);
}

TEST(RoaringBitmapTest, FromValuesDeduplicatesAndSorts) {
  RoaringBitmap bm = RoaringBitmap::FromValues({9, 3, 3, 7, 9, 1});
  EXPECT_EQ(bm.Cardinality(), 4u);
  EXPECT_EQ(bm.ToVector(), (std::vector<uint32_t>{1, 3, 7, 9}));
}

TEST(RoaringBitmapTest, FromRange) {
  RoaringBitmap bm = RoaringBitmap::FromRange(10, 20);
  EXPECT_EQ(bm.Cardinality(), 10u);
  EXPECT_TRUE(bm.Contains(10));
  EXPECT_TRUE(bm.Contains(19));
  EXPECT_FALSE(bm.Contains(20));
  EXPECT_FALSE(bm.Contains(9));
}

TEST(RoaringBitmapTest, EmptyRange) {
  EXPECT_TRUE(RoaringBitmap::FromRange(10, 10).Empty());
  EXPECT_TRUE(RoaringBitmap::FromRange(10, 5).Empty());
}

TEST(RoaringBitmapTest, RangeAcrossContainerBoundary) {
  RoaringBitmap bm = RoaringBitmap::FromRange(65530, 65546);
  EXPECT_EQ(bm.Cardinality(), 16u);
  for (uint32_t v = 65530; v < 65546; ++v) EXPECT_TRUE(bm.Contains(v));
  EXPECT_FALSE(bm.Contains(65529));
  EXPECT_FALSE(bm.Contains(65546));
}

TEST(RoaringBitmapTest, PromotionToBitsetContainer) {
  // More than 4096 values in one chunk promotes the container.
  std::vector<uint32_t> values;
  for (uint32_t v = 0; v < 5000; ++v) values.push_back(v * 2);
  RoaringBitmap bm = RoaringBitmap::FromValues(values);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  auto stats = bm.GetContainerStats();
  EXPECT_GE(stats.bitset_containers, 1);
  for (uint32_t v = 0; v < 5000; ++v) {
    EXPECT_TRUE(bm.Contains(v * 2));
    EXPECT_FALSE(bm.Contains(v * 2 + 1));
  }
}

TEST(RoaringBitmapTest, IncrementalAddPromotion) {
  RoaringBitmap bm;
  for (uint32_t v = 0; v < 5000; ++v) bm.Add(v * 3);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  EXPECT_TRUE(bm.Contains(3 * 4999));
  EXPECT_FALSE(bm.Contains(1));
}

TEST(RoaringBitmapTest, AndBasic) {
  RoaringBitmap a = RoaringBitmap::FromValues({1, 2, 3, 100000});
  RoaringBitmap b = RoaringBitmap::FromValues({2, 3, 4, 100000, 200000});
  RoaringBitmap c = a.And(b);
  EXPECT_EQ(c.ToVector(), (std::vector<uint32_t>{2, 3, 100000}));
}

TEST(RoaringBitmapTest, OrBasic) {
  RoaringBitmap a = RoaringBitmap::FromValues({1, 3});
  RoaringBitmap b = RoaringBitmap::FromValues({2, 100000});
  RoaringBitmap c = a.Or(b);
  EXPECT_EQ(c.ToVector(), (std::vector<uint32_t>{1, 2, 3, 100000}));
}

TEST(RoaringBitmapTest, AndNotBasic) {
  RoaringBitmap a = RoaringBitmap::FromValues({1, 2, 3, 4});
  RoaringBitmap b = RoaringBitmap::FromValues({2, 4, 5});
  EXPECT_EQ(a.AndNot(b).ToVector(), (std::vector<uint32_t>{1, 3}));
}

TEST(RoaringBitmapTest, NotWithinUniverse) {
  RoaringBitmap a = RoaringBitmap::FromValues({0, 2, 4});
  EXPECT_EQ(a.Not(6).ToVector(), (std::vector<uint32_t>{1, 3, 5}));
}

TEST(RoaringBitmapTest, CopySemanticsAreDeep) {
  RoaringBitmap a = RoaringBitmap::FromRange(0, 100000);  // Dense containers.
  RoaringBitmap b = a;
  b.Add(200000);
  EXPECT_EQ(a.Cardinality(), 100000u);
  EXPECT_EQ(b.Cardinality(), 100001u);
  EXPECT_FALSE(a.Contains(200000));
}

TEST(RoaringBitmapTest, RunOptimizeKeepsContents) {
  // Built from values so the dense chunks start as bitset containers.
  std::vector<uint32_t> values;
  for (uint32_t v = 100; v < 70000; ++v) values.push_back(v);
  RoaringBitmap bm = RoaringBitmap::FromValues(values);
  RoaringBitmap copy = bm;
  bm.RunOptimize();
  EXPECT_TRUE(bm == copy);
  auto stats = bm.GetContainerStats();
  EXPECT_GE(stats.run_containers, 1);
  // Run-encoded storage should be much smaller than the bitset encoding.
  EXPECT_LT(bm.SizeInBytes(), copy.SizeInBytes());
}

TEST(RoaringBitmapTest, AddAfterRunOptimize) {
  RoaringBitmap bm = RoaringBitmap::FromRange(0, 1000);
  bm.RunOptimize();
  bm.Add(5000);
  EXPECT_EQ(bm.Cardinality(), 1001u);
  EXPECT_TRUE(bm.Contains(500));
  EXPECT_TRUE(bm.Contains(5000));
}

TEST(RoaringBitmapTest, ForEachRangeCoalescesAcrossContainers) {
  RoaringBitmap bm = RoaringBitmap::FromRange(65000, 66000);
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  bm.ForEachRange([&](uint32_t b, uint32_t e) { ranges.emplace_back(b, e); });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<uint32_t, uint32_t>{65000, 66000}));
}

TEST(RoaringBitmapTest, ForEachRangeDisjoint) {
  RoaringBitmap bm = RoaringBitmap::FromValues({1, 2, 3, 10, 11, 50});
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  bm.ForEachRange([&](uint32_t b, uint32_t e) { ranges.emplace_back(b, e); });
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<uint32_t, uint32_t>{1, 4}));
  EXPECT_EQ(ranges[1], (std::pair<uint32_t, uint32_t>{10, 12}));
  EXPECT_EQ(ranges[2], (std::pair<uint32_t, uint32_t>{50, 51}));
}

TEST(RoaringBitmapTest, SerializeRoundTrip) {
  RoaringBitmap bm = RoaringBitmap::FromValues({1, 5, 100000, 4000000});
  bm.AddRange(70000, 80000);
  bm.RunOptimize();
  ByteWriter writer;
  bm.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = RoaringBitmap::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == bm);
}

TEST(RoaringBitmapTest, DeserializeRejectsGarbage) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(0);
  writer.WriteU8(7);  // Invalid container kind.
  ByteReader reader(writer.buffer());
  auto restored = RoaringBitmap::Deserialize(&reader);
  EXPECT_FALSE(restored.ok());
}

// Property-style randomized comparison against std::set across densities.
class RoaringPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(RoaringPropertyTest, MatchesReferenceSetOperations) {
  const double density = GetParam();
  Random rng(1234 + static_cast<uint64_t>(density * 1000));
  const uint32_t universe = 200000;
  std::set<uint32_t> ref_a, ref_b;
  RoaringBitmap a, b;
  const int n = static_cast<int>(universe * density);
  for (int i = 0; i < n; ++i) {
    const uint32_t va = static_cast<uint32_t>(rng.NextUint64(universe));
    const uint32_t vb = static_cast<uint32_t>(rng.NextUint64(universe));
    ref_a.insert(va);
    a.Add(va);
    ref_b.insert(vb);
    b.Add(vb);
  }
  ASSERT_EQ(a.Cardinality(), ref_a.size());
  ASSERT_EQ(b.Cardinality(), ref_b.size());

  std::vector<uint32_t> expected;
  std::set_intersection(ref_a.begin(), ref_a.end(), ref_b.begin(),
                        ref_b.end(), std::back_inserter(expected));
  EXPECT_EQ(a.And(b).ToVector(), expected);

  expected.clear();
  std::set_union(ref_a.begin(), ref_a.end(), ref_b.begin(), ref_b.end(),
                 std::back_inserter(expected));
  EXPECT_EQ(a.Or(b).ToVector(), expected);

  expected.clear();
  std::set_difference(ref_a.begin(), ref_a.end(), ref_b.begin(), ref_b.end(),
                      std::back_inserter(expected));
  EXPECT_EQ(a.AndNot(b).ToVector(), expected);

  // Round-trip through RunOptimize + serialization preserves equality.
  RoaringBitmap optimized = a;
  optimized.RunOptimize();
  EXPECT_TRUE(optimized == a);
  ByteWriter writer;
  optimized.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = RoaringBitmap::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == a);
}

INSTANTIATE_TEST_SUITE_P(Densities, RoaringPropertyTest,
                         ::testing::Values(0.0005, 0.01, 0.2, 0.9));

}  // namespace
}  // namespace pinot
