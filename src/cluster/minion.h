#ifndef PINOT_CLUSTER_MINION_H_
#define PINOT_CLUSTER_MINION_H_

#include <functional>
#include <map>
#include <string>

#include "bitmap/roaring.h"
#include "cluster/cluster_context.h"
#include "cluster/controller.h"

namespace pinot {

/// A Pinot minion (paper section 3.2): executes compute-intensive
/// maintenance tasks scheduled by the controller. The task registry is
/// extensible ("the task management and scheduling is extensible to add
/// new job and schedule types"); the built-in purge task implements the
/// legally-required record expunging flow described in the paper.
class Minion {
 public:
  /// Executors receive the task and the minion (for cluster access) and
  /// return the task outcome.
  using TaskExecutor =
      std::function<Status(const Controller::Task&, Minion&)>;

  Minion(std::string id, ClusterContext ctx, Controller* controller);

  /// Registers with the cluster and installs the built-in "purge"
  /// executor.
  void Start();

  const std::string& id() const { return id_; }
  ClusterContext& ctx() { return ctx_; }
  Controller* controller() { return controller_; }

  void RegisterExecutor(const std::string& type, TaskExecutor executor);

  /// Polls the controller's task queue and runs up to `max_tasks` tasks.
  /// Returns the number executed successfully.
  int ProcessTasks(int max_tasks = 1000);

 private:
  const std::string id_;
  ClusterContext ctx_;
  Controller* const controller_;
  std::map<std::string, TaskExecutor> executors_;
};

/// Task payload codecs. Payloads are length-prefixed binary, never a
/// separator-joined rendering: the old "<column>\n<rendered value>" purge
/// format corrupted on values containing '\n'.
std::string EncodePurgePayload(const std::string& column,
                               const std::string& value);
Status DecodePurgePayload(const std::string& payload, std::string* column,
                          std::string* value);
/// The upsert-compaction payload is the invalid-docs bitmap captured from
/// the serving server when the task was scheduled.
std::string EncodeUpsertCompactionPayload(const RoaringBitmap& invalid);
Result<RoaringBitmap> DecodeUpsertCompactionPayload(
    const std::string& payload);

/// Built-in purge executor. Task payload: EncodePurgePayload(column, value).
/// Downloads the segment, drops every record whose `column` equals the
/// value, rebuilds the segment with its original indexes, and re-uploads
/// it under the same name (atomic replace).
Status RunPurgeTask(const Controller::Task& task, Minion& minion);

/// Built-in upsert-compaction executor. Task payload:
/// EncodeUpsertCompactionPayload(invalid docs). Downloads the segment,
/// drops the superseded rows, rebuilds with the original indexes, and
/// re-uploads under the same name; the serving server reloads the new blob
/// and rebinds it into the table's upsert key map.
Status RunUpsertCompactionTask(const Controller::Task& task, Minion& minion);

}  // namespace pinot

#endif  // PINOT_CLUSTER_MINION_H_
