#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/segment_executor.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::BuildAnalyticsSegment;
using test::RunPql;

TEST(QueryExecutionTest, CountStar) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment, "SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);
  // No filter -> metadata-only plan.
  EXPECT_TRUE(result.stats.answered_from_metadata);
}

TEST(QueryExecutionTest, SumWithEqFilter) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT sum(impressions) FROM analytics WHERE country = 'us'");
  // us rows: 10+20+50+80+100+120 = 380
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 380);
  EXPECT_EQ(result.stats.docs_matched, 6u);
}

TEST(QueryExecutionTest, MinMaxAvgFromMetadata) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT min(impressions), max(impressions) FROM analytics");
  EXPECT_TRUE(result.stats.answered_from_metadata);
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 10);
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[1]), 120);
}

TEST(QueryExecutionTest, AvgNotFromMetadata) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment, "SELECT avg(clicks) FROM analytics");
  EXPECT_FALSE(result.stats.answered_from_metadata);
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 75.0 / 12.0);
}

TEST(QueryExecutionTest, AndFilter) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment,
                       "SELECT count(*) FROM analytics WHERE country = 'us' "
                       "AND browser = 'firefox'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 3);
}

TEST(QueryExecutionTest, OrFilter) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment,
                       "SELECT count(*) FROM analytics WHERE browser = "
                       "'firefox' OR browser = 'safari'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 8);
}

TEST(QueryExecutionTest, RangeFilterOnTime) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT count(*) FROM analytics WHERE day BETWEEN 101 AND 102");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 6);
  result = RunPql(segment, "SELECT count(*) FROM analytics WHERE day > 102");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 3);
}

TEST(QueryExecutionTest, NotEqAndNotIn) {
  auto segment = BuildAnalyticsSegment();
  auto result =
      RunPql(segment, "SELECT count(*) FROM analytics WHERE country != 'us'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 6);
  result = RunPql(
      segment,
      "SELECT count(*) FROM analytics WHERE country NOT IN ('us', 'ca')");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 3);
}

TEST(QueryExecutionTest, InFilter) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT count(*) FROM analytics WHERE country IN ('de', 'fr')");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 3);
}

TEST(QueryExecutionTest, FilterMatchingNothing) {
  auto segment = BuildAnalyticsSegment();
  // 'jp' falls inside the [ca, us] stats range, so the segment cannot be
  // pruned; execution finds nothing.
  auto result =
      RunPql(segment, "SELECT count(*) FROM analytics WHERE country = 'jp'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 0);
  EXPECT_EQ(result.stats.segments_queried, 1u);

  // 'zz' is above the column max: metadata alone prunes the segment.
  result =
      RunPql(segment, "SELECT count(*) FROM analytics WHERE country = 'zz'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 0);
  EXPECT_EQ(result.stats.segments_queried, 0u);
  EXPECT_EQ(result.stats.segments_pruned, 1u);

  // Same for a time range entirely past the segment's data.
  result = RunPql(segment, "SELECT count(*) FROM analytics WHERE day > 500");
  EXPECT_EQ(result.stats.segments_pruned, 1u);
}

TEST(QueryExecutionTest, MultiValueFilter) {
  auto segment = BuildAnalyticsSegment();
  // tags contains 'a' in 5 rows.
  auto result =
      RunPql(segment, "SELECT count(*) FROM analytics WHERE tags = 'a'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 5);
}

TEST(QueryExecutionTest, GroupByWithTopN) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment,
      "SELECT sum(impressions) FROM analytics GROUP BY country TOP 2");
  ASSERT_EQ(result.group_rows.size(), 2u);
  // us = 380, ca = 180, de = 130, fr = 90.
  EXPECT_EQ(std::get<std::string>(result.group_rows[0].keys[0]), "us");
  EXPECT_DOUBLE_EQ(std::get<double>(result.group_rows[0].values[0]), 380);
  EXPECT_EQ(std::get<std::string>(result.group_rows[1].keys[0]), "ca");
  EXPECT_DOUBLE_EQ(std::get<double>(result.group_rows[1].values[0]), 180);
}

TEST(QueryExecutionTest, GroupByMultipleColumns) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment,
                       "SELECT count(*) FROM analytics GROUP BY country, "
                       "browser TOP 100");
  // Distinct (country, browser) pairs in the dataset.
  EXPECT_EQ(result.group_rows.size(), 9u);
  int64_t total = 0;
  for (const auto& row : result.group_rows) {
    total += std::get<int64_t>(row.values[0]);
  }
  EXPECT_EQ(total, 12);
}

TEST(QueryExecutionTest, GroupByStringsWithSeparatorBytesStayDistinct) {
  // ("a\x1f", "b") and ("a", "\x1fb") collided into one group under the
  // old '\x1f'-separated key encoding.
  std::vector<test::AnalyticsRow> rows = {
      {"a\x1f", "b", 1, {}, 10, 1, 100},
      {"a", "\x1f"
            "b",
       2, {}, 20, 2, 100},
  };
  auto segment = BuildAnalyticsSegment({}, rows);
  auto result = RunPql(segment,
                       "SELECT count(*) FROM analytics GROUP BY country, "
                       "browser TOP 10");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_EQ(result.group_rows.size(), 2u);
  for (const auto& row : result.group_rows) {
    EXPECT_EQ(std::get<int64_t>(row.values[0]), 1);
  }
}

TEST(QueryExecutionTest, GroupByMultiValueColumnExplodes) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT count(*) FROM analytics GROUP BY tags TOP 100");
  // Tag counts: a=5, b=4, c=3, d=2, and 2 rows with no tags.
  int64_t a_count = 0;
  for (const auto& row : result.group_rows) {
    if (ValueToString(row.keys[0]) == "a") {
      a_count = std::get<int64_t>(row.values[0]);
    }
  }
  EXPECT_EQ(a_count, 5);
}

TEST(QueryExecutionTest, DistinctCount) {
  auto segment = BuildAnalyticsSegment();
  auto result =
      RunPql(segment, "SELECT distinctcount(memberId) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 5);
  result = RunPql(
      segment,
      "SELECT distinctcount(memberId) FROM analytics WHERE country = 'us'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 4);  // 1,2,4,5
}

TEST(QueryExecutionTest, SelectionWithLimit) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment,
      "SELECT country, impressions FROM analytics WHERE browser = 'chrome' "
      "LIMIT 2");
  ASSERT_EQ(result.selection_rows.size(), 2u);
  EXPECT_EQ(result.selection_columns,
            (std::vector<std::string>{"country", "impressions"}));
}

TEST(QueryExecutionTest, SelectionOrderBy) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment,
                       "SELECT memberId, impressions FROM analytics ORDER BY "
                       "impressions DESC LIMIT 3");
  ASSERT_EQ(result.selection_rows.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(result.selection_rows[0][1]), 120);
  EXPECT_EQ(std::get<int64_t>(result.selection_rows[1][1]), 110);
  EXPECT_EQ(std::get<int64_t>(result.selection_rows[2][1]), 100);
}

TEST(QueryExecutionTest, SelectStarExpandsSchema) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment, "SELECT * FROM analytics LIMIT 1");
  ASSERT_EQ(result.selection_rows.size(), 1u);
  EXPECT_EQ(result.selection_rows[0].size(), 7u);
}

TEST(QueryExecutionTest, UnknownColumnMakesResultPartial) {
  auto segment = BuildAnalyticsSegment();
  auto result =
      RunPql(segment, "SELECT count(*) FROM analytics WHERE nope = 1");
  EXPECT_TRUE(result.partial);
}

TEST(QueryExecutionTest, MultipleSegmentsMerge) {
  std::vector<std::shared_ptr<SegmentInterface>> segments = {
      BuildAnalyticsSegment(), BuildAnalyticsSegment()};
  auto result = RunPql(segments,
                       "SELECT sum(impressions) FROM analytics WHERE "
                       "country = 'us'");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 760);
  // Group rows merge across segments by value, not dictionary id.
  result = RunPql(segments,
                  "SELECT count(*) FROM analytics GROUP BY browser TOP 10");
  EXPECT_EQ(result.group_rows.size(), 3u);
  for (const auto& row : result.group_rows) {
    if (ValueToString(row.keys[0]) == "firefox") {
      EXPECT_EQ(std::get<int64_t>(row.values[0]), 10);
    }
  }
}

TEST(QueryExecutionTest, DistinctCountMergesAcrossSegments) {
  std::vector<std::shared_ptr<SegmentInterface>> segments = {
      BuildAnalyticsSegment(), BuildAnalyticsSegment()};
  auto result =
      RunPql(segments, "SELECT distinctcount(memberId) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 5);  // Not 10.
}

TEST(QueryExecutionTest, FilterOnSchemaEvolvedColumn) {
  auto segment = BuildAnalyticsSegment();
  // Simulate a schema-evolved query against a segment lacking the column:
  // add the field to the segment's schema via a fresh schema + query path.
  // The executor treats missing columns as default-filled.
  auto result =
      RunPql(segment, "SELECT count(*) FROM analytics WHERE country = ''");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 0);
}

// Index-equivalence property: the same queries return identical results
// with no index, inverted indexes, sorted column, or star-tree.
class IndexEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalenceTest, AllIndexConfigurationsAgree) {
  SegmentBuildConfig config;
  switch (GetParam()) {
    case 0:
      break;  // No indexes.
    case 1:
      config.inverted_index_columns = {"country", "browser", "memberId",
                                       "tags", "day"};
      break;
    case 2:
      config.sort_columns = {"memberId", "day"};
      break;
    case 3:
      config.sort_columns = {"country"};
      config.inverted_index_columns = {"browser"};
      config.star_tree.dimensions = {"country", "browser", "day"};
      config.star_tree.metrics = {"impressions", "clicks"};
      config.star_tree.max_leaf_records = 1;
      break;
  }
  auto segment = BuildAnalyticsSegment(config);
  auto baseline = BuildAnalyticsSegment();

  const std::vector<std::string> queries = {
      "SELECT count(*) FROM t WHERE country = 'us'",
      "SELECT sum(impressions) FROM t WHERE browser = 'firefox'",
      "SELECT sum(impressions), sum(clicks) FROM t WHERE browser = 'firefox' "
      "OR browser = 'safari'",
      "SELECT sum(clicks) FROM t WHERE country = 'us' AND browser = 'chrome'",
      "SELECT count(*) FROM t WHERE day BETWEEN 101 AND 102",
      "SELECT sum(impressions) FROM t WHERE country IN ('us', 'de') AND day "
      ">= 101",
      "SELECT count(*) FROM t WHERE country != 'us'",
      "SELECT sum(impressions) FROM t GROUP BY country TOP 10",
      "SELECT sum(impressions) FROM t WHERE browser = 'firefox' GROUP BY "
      "country TOP 10",
      "SELECT min(impressions), max(impressions), avg(impressions) FROM t "
      "WHERE day > 100",
  };
  for (const auto& pql : queries) {
    auto a = RunPql(segment, pql);
    auto b = RunPql(baseline, pql);
    ASSERT_FALSE(a.partial) << pql << ": " << a.error_message;
    ASSERT_EQ(a.aggregates.size(), b.aggregates.size()) << pql;
    for (size_t i = 0; i < a.aggregates.size(); ++i) {
      EXPECT_EQ(ValueToString(a.aggregates[i]), ValueToString(b.aggregates[i]))
          << pql;
    }
    ASSERT_EQ(a.group_rows.size(), b.group_rows.size()) << pql;
    for (size_t g = 0; g < a.group_rows.size(); ++g) {
      EXPECT_EQ(ValueToString(a.group_rows[g].keys[0]),
                ValueToString(b.group_rows[g].keys[0]))
          << pql;
      EXPECT_EQ(ValueToString(a.group_rows[g].values[0]),
                ValueToString(b.group_rows[g].values[0]))
          << pql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(IndexConfigs, IndexEquivalenceTest,
                         ::testing::Values(0, 1, 2, 3));

// --- Batched scan path equivalence -----------------------------------------
//
// The block-decode aggregation kernels and packed group-by keys must be
// indistinguishable from the per-document reference path.

QueryResult RunWithOptions(const std::shared_ptr<SegmentInterface>& segment,
                           const std::string& pql,
                           const ScanOptions& options) {
  auto query = ParsePql(pql);
  EXPECT_TRUE(query.ok()) << pql << ": " << query.status().ToString();
  PartialResult partial;
  Status st = ExecuteQueryOnSegment(*segment, *query, options, &partial);
  EXPECT_TRUE(st.ok()) << pql << ": " << st.ToString();
  return ReduceToFinalResult(*query, std::move(partial));
}

// Canonical group-key -> finalized-values map, so comparisons are
// insensitive to tie-breaking in the TOP sort.
std::map<std::string, std::string> GroupRowsByKey(const QueryResult& r) {
  std::map<std::string, std::string> out;
  for (const auto& row : r.group_rows) {
    std::string key;
    for (const auto& k : row.keys) key += ValueToString(k) + "|";
    std::string vals;
    for (const auto& v : row.values) vals += ValueToString(v) + "|";
    out[key] = vals;
  }
  return out;
}

void ExpectSameResults(const QueryResult& a, const QueryResult& b,
                       const std::string& pql, const char* variant) {
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size()) << pql;
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    EXPECT_EQ(ValueToString(a.aggregates[i]), ValueToString(b.aggregates[i]))
        << pql << " [" << variant << "]";
  }
  EXPECT_EQ(GroupRowsByKey(a), GroupRowsByKey(b))
      << pql << " [" << variant << "]";
  EXPECT_EQ(a.stats.docs_scanned, b.stats.docs_scanned)
      << pql << " [" << variant << "]";
}

std::shared_ptr<ImmutableSegment> BuildLargeRandomSegment() {
  const std::vector<std::string> countries = {"us", "ca", "de", "fr", "jp",
                                              "br", "in", "uk"};
  const std::vector<std::string> browsers = {"firefox", "chrome", "safari",
                                             "edge"};
  const std::vector<std::string> tag_pool = {"a", "b", "c", "d", "e"};
  Random rng(20260805);
  std::vector<test::AnalyticsRow> rows;
  for (int i = 0; i < 3000; ++i) {
    test::AnalyticsRow r;
    r.country = countries[rng.NextUint64(countries.size())];
    r.browser = browsers[rng.NextUint64(browsers.size())];
    r.member_id = static_cast<int64_t>(rng.NextUint64(500));
    const uint64_t num_tags = rng.NextUint64(4);
    for (uint64_t t = 0; t < num_tags; ++t) {
      r.tags.push_back(tag_pool[rng.NextUint64(tag_pool.size())]);
    }
    r.impressions = static_cast<int64_t>(rng.NextUint64(10000));
    r.clicks = static_cast<int64_t>(rng.NextUint64(100));
    r.day = 100 + static_cast<int64_t>(rng.NextUint64(30));
    rows.push_back(std::move(r));
  }
  return BuildAnalyticsSegment({}, std::move(rows));
}

TEST(BatchedScanEquivalenceTest, BatchedPathsMatchPerDocReference) {
  const std::vector<std::shared_ptr<SegmentInterface>> segments = {
      BuildAnalyticsSegment(), BuildLargeRandomSegment()};
  const std::vector<std::string> queries = {
      // Range-like doc sets (no filter / sorted-range).
      "SELECT sum(impressions), min(impressions), max(impressions), "
      "avg(clicks) FROM t",
      "SELECT sum(impressions) FROM t WHERE day BETWEEN 101 AND 110",
      // Bitmap doc sets.
      "SELECT sum(impressions), avg(impressions) FROM t WHERE browser = "
      "'firefox' OR browser = 'safari'",
      "SELECT min(clicks), max(clicks) FROM t WHERE country IN ('us', 'de') "
      "AND day >= 101",
      // Group-bys: single column, multi column, high-cardinality column,
      // and filtered variants.
      "SELECT sum(impressions) FROM t GROUP BY country TOP 1000",
      "SELECT count(*), sum(impressions), min(impressions), "
      "max(impressions), avg(clicks) FROM t GROUP BY country, browser TOP "
      "1000",
      "SELECT sum(impressions) FROM t WHERE browser = 'firefox' GROUP BY "
      "country, day TOP 1000",
      "SELECT count(*) FROM t GROUP BY memberId, country TOP 10000",
      // Multi-value group column: must fall back to string keys and still
      // agree (exploded combinations).
      "SELECT count(*), sum(impressions) FROM t GROUP BY tags TOP 1000",
      "SELECT count(*) FROM t GROUP BY country, tags TOP 1000",
      // DISTINCTCOUNT stays on the reference path in every configuration.
      "SELECT distinctcount(browser) FROM t WHERE country = 'us' GROUP BY "
      "country TOP 1000",
  };

  ScanOptions reference;
  reference.batched_decode = false;
  reference.packed_groupby = false;
  ScanOptions batched_dense;  // Defaults: packed keys, dense table allowed.
  ScanOptions batched_open;
  batched_open.dense_groupby_max_slots = 0;  // Force open addressing.
  ScanOptions batched_string_keys;
  batched_string_keys.packed_groupby = false;

  for (const auto& segment : segments) {
    for (const auto& pql : queries) {
      const QueryResult expected = RunWithOptions(segment, pql, reference);
      ExpectSameResults(RunWithOptions(segment, pql, batched_dense), expected,
                        pql, "dense packed keys");
      ExpectSameResults(RunWithOptions(segment, pql, batched_open), expected,
                        pql, "open-addressing packed keys");
      ExpectSameResults(RunWithOptions(segment, pql, batched_string_keys),
                        expected, pql, "batched decode, string keys");
    }
  }
}

}  // namespace
}  // namespace pinot
