// Microbenchmark for the batched columnar scan engine: per-doc reference
// execution vs block decode + aggregation kernels + packed group-by keys,
// on one large segment. Reports scan throughput (rows/sec) per query and
// the batched-over-reference speedup.
//
// Expected shape: batched filtered SUM and single-column group-by run at
// >= 2x the per-doc path; group-bys gain the most (no per-doc string key
// allocation or node-based hash probe).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "metrics/metrics.h"
#include "query/result.h"
#include "query/segment_executor.h"
#include "trace/slow_query_log.h"
#include "trace/trace.h"

namespace pinot {
namespace bench {
namespace {

std::shared_ptr<ImmutableSegment> BuildScanSegment(uint32_t rows,
                                                   uint64_t seed) {
  auto schema = Schema::Make({
      FieldSpec::Dimension("country", DataType::kString),
      FieldSpec::Dimension("browser", DataType::kString),
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Metric("impressions", DataType::kLong),
      FieldSpec::Metric("clicks", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    std::abort();
  }
  const std::vector<std::string> countries = {"us", "ca", "de", "fr",
                                              "jp", "br", "in", "uk"};
  const std::vector<std::string> browsers = {"firefox", "chrome", "safari",
                                             "edge"};
  SegmentBuildConfig config;
  config.table_name = "scan";
  config.segment_name = "scan_0";
  // Filters go through inverted indexes (the production Pinot setup), so
  // the timed difference is the scan/aggregation pipeline itself.
  config.inverted_index_columns = {"country", "browser"};
  SegmentBuilder builder(*schema, config);
  Random rng(seed);
  for (uint32_t i = 0; i < rows; ++i) {
    Row row;
    row.SetString("country", countries[rng.NextUint64(countries.size())])
        .SetString("browser", browsers[rng.NextUint64(browsers.size())])
        .SetLong("memberId", static_cast<int64_t>(rng.NextUint64(50000)))
        .SetLong("impressions", static_cast<int64_t>(rng.NextUint64(100000)))
        .SetLong("clicks", static_cast<int64_t>(rng.NextUint64(100)))
        .SetLong("day", 100 + static_cast<int64_t>(rng.NextUint64(30)));
    Status st = builder.AddRow(row);
    if (!st.ok()) {
      std::fprintf(stderr, "AddRow: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  auto segment = builder.Build();
  if (!segment.ok()) {
    std::fprintf(stderr, "Build: %s\n", segment.status().ToString().c_str());
    std::abort();
  }
  return *segment;
}

struct RunStats {
  double rows_per_sec = 0;
  uint64_t docs_scanned = 0;
  double checksum = 0;  // Keeps the work observable.
  std::vector<double> latencies_ms;  // One entry per iteration, sorted.
};

RunStats RunQuery(const SegmentInterface& segment, const Query& query,
                  const ScanOptions& options, int iters,
                  Histogram* latency = nullptr) {
  RunStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) {
    const auto iter_start = std::chrono::steady_clock::now();
    PartialResult partial;
    Status st = ExecuteQueryOnSegment(segment, query, options, &partial);
    if (!st.ok()) {
      std::fprintf(stderr, "execute: %s\n", st.ToString().c_str());
      std::abort();
    }
    const double millis = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - iter_start)
                              .count();
    stats.latencies_ms.push_back(millis);
    if (latency != nullptr) latency->Observe(millis);
    stats.docs_scanned += partial.stats.docs_scanned;
    for (const auto& agg : partial.aggregates) stats.checksum += agg.sum;
    const GroupTable& groups = partial.groups;
    for (uint32_t g = 0; g < groups.size(); ++g) {
      const AggState* states = groups.StatesAt(g);
      for (size_t i = 0; i < groups.num_aggs(); ++i) {
        stats.checksum += states[i].sum;
      }
    }
  }
  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats.rows_per_sec =
      seconds > 0 ? static_cast<double>(stats.docs_scanned) / seconds : 0;
  return stats;
}

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  // Default to one 1M-doc segment (the acceptance configuration); the
  // shared --rows flag overrides.
  const uint32_t rows = options.rows == 150000 ? 1000000 : options.rows;
  const int iters = 5;

  std::printf("# bench_scan_batch — per-doc vs batched scan on a %u-doc "
              "segment (%d iterations per cell)\n",
              rows, iters);
  auto segment = BuildScanSegment(rows, options.seed);

  struct Case {
    const char* name;
    const char* slug;  // Space-free JSON config key (check_perf.sh awk).
    const char* pql;
  };
  const std::vector<Case> cases = {
      {"full-scan sum", "full-scan-sum", "SELECT sum(impressions) FROM scan"},
      {"filtered sum", "filtered-sum",
       "SELECT sum(impressions) FROM scan WHERE browser = 'firefox'"},
      {"filtered sum+min+max", "filtered-sum-min-max",
       "SELECT sum(impressions), min(impressions), max(impressions) FROM "
       "scan WHERE country IN ('us', 'de', 'fr')"},
      {"group-by country (8 groups)", "groupby-country",
       "SELECT sum(impressions) FROM scan GROUP BY country TOP 1000"},
      {"group-by country,browser,day", "groupby-country-browser-day",
       "SELECT count(*), sum(impressions) FROM scan GROUP BY country, "
       "browser, day TOP 10000"},
      {"group-by memberId (50k groups)", "groupby-memberId-50k",
       "SELECT sum(impressions) FROM scan GROUP BY memberId TOP 100000"},
  };

  ScanOptions reference;
  reference.batched_decode = false;
  reference.packed_groupby = false;
  ScanOptions batched;  // Defaults.

  MetricsRegistry metrics;
  // Worst-3 traces of the batched path, collected from one traced run per
  // case *after* its timed cells so the measured loop stays on the
  // disabled (null-span) path.
  SlowQueryLog slow_log(SlowQueryLog::Options{/*threshold_millis=*/0.0,
                                              /*capacity=*/3});
  // Machine-readable dump gated by scripts/check_perf.sh: one point per
  // (case, mode) keyed by the segment row count so runs at the same --rows
  // compare against each other; achieved_qps carries the scan throughput.
  BenchJsonWriter json("scan_batch", options.json_path);
  auto to_point = [rows](RunStats& stats) {
    QpsPoint point;
    point.offered_qps = rows;
    point.achieved_qps = stats.rows_per_sec;
    point.queries = stats.latencies_ms.size();
    double sum = 0;
    for (double v : stats.latencies_ms) sum += v;
    point.avg_ms =
        stats.latencies_ms.empty() ? 0 : sum / stats.latencies_ms.size();
    point.p50_ms = Percentile(stats.latencies_ms, 0.50);
    point.p95_ms = Percentile(stats.latencies_ms, 0.95);
    point.p99_ms = Percentile(stats.latencies_ms, 0.99);
    return point;
  };
  std::printf("%-32s %16s %16s %9s\n", "query", "per-doc rows/s",
              "batched rows/s", "speedup");
  for (const auto& c : cases) {
    auto query = ParsePql(c.pql);
    if (!query.ok()) {
      std::fprintf(stderr, "bad query %s: %s\n", c.pql,
                   query.status().ToString().c_str());
      std::abort();
    }
    RunStats ref = RunQuery(
        *segment, *query, reference, iters,
        metrics.GetHistogram("bench_scan_latency_ms",
                             {{"case", c.name}, {"mode", "per-doc"}}));
    RunStats fast = RunQuery(
        *segment, *query, batched, iters,
        metrics.GetHistogram("bench_scan_latency_ms",
                             {{"case", c.name}, {"mode", "batched"}}));
    json.Add(std::string(c.slug) + "/per-doc", to_point(ref));
    json.Add(std::string(c.slug) + "/batched", to_point(fast));
    if (ref.checksum != fast.checksum) {
      std::fprintf(stderr, "MISMATCH on %s: %f vs %f\n", c.name, ref.checksum,
                   fast.checksum);
      std::abort();
    }
    std::printf("%-32s %16.0f %16.0f %8.2fx\n", c.name, ref.rows_per_sec,
                fast.rows_per_sec,
                ref.rows_per_sec > 0 ? fast.rows_per_sec / ref.rows_per_sec
                                     : 0);
    std::fflush(stdout);

    // One traced execution per case for the exit-time slow-query log.
    const auto traced_start = std::chrono::steady_clock::now();
    TraceSpan root = TraceSpan::Open("segment:scan_0");
    PartialResult partial;
    Status st = ExecuteQueryOnSegment(*segment, *query, batched, &root,
                                      &partial);
    if (!st.ok()) {
      std::fprintf(stderr, "traced execute: %s\n", st.ToString().c_str());
      std::abort();
    }
    root.Annotate("docs_scanned",
                  static_cast<int64_t>(partial.stats.docs_scanned));
    root.Close();
    slow_log.Record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - traced_start)
                        .count(),
                    c.pql, root);
  }
  std::printf("\n# --- slow query log (top 3) ---\n%s",
              slow_log.Dump(3).c_str());
  std::printf("\n# --- metrics dump ---\n%s", metrics.Dump().c_str());
  return json.Write() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
