file(REMOVE_RECURSE
  "CMakeFiles/filter_evaluator_test.dir/filter_evaluator_test.cc.o"
  "CMakeFiles/filter_evaluator_test.dir/filter_evaluator_test.cc.o.d"
  "filter_evaluator_test"
  "filter_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
