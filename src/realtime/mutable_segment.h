#ifndef PINOT_REALTIME_MUTABLE_SEGMENT_H_
#define PINOT_REALTIME_MUTABLE_SEGMENT_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "data/row.h"
#include "data/schema.h"
#include "realtime/upsert_meta.h"
#include "segment/segment.h"
#include "segment/segment_builder.h"

namespace pinot {

/// An in-memory *consuming* segment fed from a stream partition (paper
/// sections 3.3.1, 3.3.6). Columns are dictionary-encoded with mutable
/// (arrival-order, hash-lookup) dictionaries and plain dict-id arrays, and
/// the segment is queryable while it grows. Sealing re-encodes the rows
/// into an ImmutableSegment with sorted dictionaries, bit packing, and the
/// table's configured indexes.
///
/// Thread safety: single writer (the stream consumer), multiple concurrent
/// readers. `Index` takes the segment's writer lock; queries must hold a
/// reader lock from `AcquireReadLock` for the whole execution over this
/// segment (the owning server does this), which excludes the writer while
/// letting readers run concurrently with each other. `num_docs()` alone is
/// additionally safe without the lock (release/acquire publication).
class MutableSegment : public SegmentInterface {
 public:
  MutableSegment(Schema schema, std::string table_name,
                 std::string segment_name, Clock* clock);
  ~MutableSegment() override;

  /// Appends one event. Missing fields take schema defaults. The row is
  /// validated in full before any column is touched, so a mid-row type
  /// error cannot leave a torn row with mismatched column lengths.
  Status Index(const Row& row);

  /// Appends one event to an upsert table: renders the row's primary key
  /// and commits key -> (this segment, new doc) into `upsert`, invalidating
  /// the key's previous row — all inside this segment's writer lock, so a
  /// query (which holds reader locks on every consuming segment) can never
  /// observe the new row live alongside the superseded one.
  Status IndexUpsert(const Row& row, UpsertTableState* upsert);

  /// Shared lock readers must hold while accessing columns, metadata, or
  /// rows of a segment that may be concurrently indexed into.
  std::shared_lock<std::shared_mutex> AcquireReadLock() const {
    return std::shared_lock<std::shared_mutex>(rw_mutex_);
  }

  // SegmentInterface:
  const Schema& schema() const override { return schema_; }
  uint32_t num_docs() const override {
    return num_docs_.load(std::memory_order_acquire);
  }
  const SegmentMetadata& metadata() const override { return metadata_; }
  const ColumnReader* GetColumn(const std::string& name) const override;
  const ValidDocsTracker* valid_docs() const override {
    return valid_docs_.get();
  }

  /// Attaches the upsert validity tracker (shared with the sealed
  /// promotion, which preserves docids for upsert tables).
  void SetValidDocs(std::shared_ptr<ValidDocsTracker> tracker) {
    valid_docs_ = std::move(tracker);
  }
  const std::shared_ptr<ValidDocsTracker>& valid_docs_ptr() const {
    return valid_docs_;
  }

  /// Builds the immutable replacement for this segment using the table's
  /// segment-generation options (sort columns, inverted indexes,
  /// star-tree).
  Result<std::shared_ptr<ImmutableSegment>> Seal(
      const SegmentBuildConfig& config) const;

 private:
  class MutableColumn;

  /// Shared append body; caller supplies the pre-rendered upsert key (empty
  /// `upsert` for append-only tables).
  Status IndexInternal(const Row& row, UpsertTableState* upsert,
                       const std::string& key);

  Schema schema_;
  SegmentMetadata metadata_;
  Clock* clock_;
  mutable std::shared_mutex rw_mutex_;  // Writer: Index. Readers: queries/Seal.
  std::vector<std::unique_ptr<MutableColumn>> columns_;
  std::vector<Row> rows_;  // Retained for sealing.
  std::atomic<uint32_t> num_docs_{0};
  std::shared_ptr<ValidDocsTracker> valid_docs_;
};

}  // namespace pinot

#endif  // PINOT_REALTIME_MUTABLE_SEGMENT_H_
