// Cluster-level upsert tests: latest-row-wins queries across consuming and
// sealed segments, the plan-path regression pins (metadata-only and
// star-tree must not serve dead rows), minion compaction, and the purge
// payload fix for newline-bearing values.
#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsRow;
using test::AnalyticsSchema;
using test::ToRow;

class UpsertTableTest : public ::testing::Test {
 protected:
  UpsertTableTest() : clock_(1000) {
    PinotClusterOptions options;
    options.clock = &clock_;
    options.num_servers = 1;
    options.num_minions = 1;
    options.controller_options.completion_max_wait_millis = 0;
    cluster_ = std::make_unique<PinotCluster>(options);
  }

  TableConfig UpsertConfig(int64_t flush_rows = 1000) {
    TableConfig config;
    config.name = "analytics";
    config.type = TableType::kRealtime;
    config.schema = AnalyticsSchema();
    config.num_replicas = 1;
    config.realtime.topic = "analytics-events";
    config.realtime.num_partitions = 1;
    config.realtime.flush_threshold_rows = flush_rows;
    config.realtime.flush_threshold_millis = 1LL << 40;
    config.upsert_enabled = true;
    config.upsert_key_columns = {"memberId"};
    return config;
  }

  StreamTopic* CreateTopic() {
    return cluster_->streams()->GetOrCreateTopic("analytics-events", 1);
  }

  void Produce(StreamTopic* topic, int64_t member, int64_t impressions,
               const std::string& country = "us") {
    AnalyticsRow row{country, "chrome", member, {}, impressions, 1, 100};
    topic->Produce(std::to_string(member), ToRow(row));
  }

  int64_t Count(const std::string& pql) {
    auto result = cluster_->Execute(pql);
    EXPECT_FALSE(result.partial) << result.error_message;
    return std::get<int64_t>(result.aggregates[0]);
  }

  SimulatedClock clock_;
  std::unique_ptr<PinotCluster> cluster_;
};

TEST_F(UpsertTableTest, ConfigValidation) {
  CreateTopic();
  Controller* leader = cluster_->leader_controller();

  TableConfig offline = UpsertConfig();
  offline.type = TableType::kOffline;
  offline.realtime = {};
  EXPECT_FALSE(leader->AddTable(offline).ok());

  TableConfig no_keys = UpsertConfig();
  no_keys.upsert_key_columns.clear();
  EXPECT_FALSE(leader->AddTable(no_keys).ok());

  TableConfig bad_column = UpsertConfig();
  bad_column.upsert_key_columns = {"nope"};
  EXPECT_FALSE(leader->AddTable(bad_column).ok());

  TableConfig multi_value = UpsertConfig();
  multi_value.upsert_key_columns = {"tags"};
  EXPECT_FALSE(leader->AddTable(multi_value).ok());

  TableConfig star = UpsertConfig();
  star.star_tree.dimensions = {"country"};
  star.star_tree.metrics = {"impressions"};
  EXPECT_FALSE(leader->AddTable(star).ok());

  EXPECT_TRUE(leader->AddTable(UpsertConfig()).ok());
  // Round-trip through the property store keeps the upsert fields.
  auto loaded = leader->GetTableConfig("analytics_REALTIME");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->upsert_enabled);
  EXPECT_EQ(loaded->upsert_key_columns,
            std::vector<std::string>{"memberId"});
}

// Satellite regression: the metadata-only plan (unfiltered count/min/max
// straight from segment metadata) must not over-count dead rows. Upsert the
// same key twice and the count is 1, not 2.
TEST_F(UpsertTableTest, UnfilteredCountSeesOneRowPerKey) {
  StreamTopic* topic = CreateTopic();
  ASSERT_TRUE(cluster_->leader_controller()->AddTable(UpsertConfig()).ok());
  Produce(topic, 1, 10);
  Produce(topic, 1, 20);
  cluster_->ProcessRealtimeTicks(2);

  EXPECT_EQ(Count("SELECT count(*) FROM analytics"), 1);
  // The live row is the LATEST one.
  auto result = cluster_->Execute("SELECT sum(impressions) FROM analytics");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 20);

  // total_docs (the metadata-derived denominator) also reports live rows.
  EXPECT_EQ(result.total_docs, 1u);

  // The dead-row metric moved.
  EXPECT_GE(cluster_->metrics()->CounterValue(
                "server_upsert_dead_rows_total",
                {{"table", "analytics_REALTIME"}}),
            1u);
}

// Satellite regression: EXPLAIN pins the plan fallback — an upsert segment
// can never answer from metadata or a star-tree.
TEST_F(UpsertTableTest, ExplainShowsRawPlanOnUpsertSegments) {
  StreamTopic* topic = CreateTopic();
  ASSERT_TRUE(cluster_->leader_controller()->AddTable(UpsertConfig()).ok());
  Produce(topic, 1, 10);
  Produce(topic, 1, 20);
  cluster_->ProcessRealtimeTicks(2);

  auto result = cluster_->Execute("EXPLAIN SELECT count(*) FROM analytics");
  ASSERT_TRUE(result.span.has_value());
  const TraceSpan* segment =
      result.span->Find("segment:analytics_REALTIME__0__0");
  ASSERT_NE(segment, nullptr) << result.span->ToString();
  EXPECT_EQ(segment->LabelValue("plan"), "raw");

  // TRACE labels the upsert path and the live-doc count.
  result = cluster_->Execute("TRACE SELECT count(*) FROM analytics");
  ASSERT_TRUE(result.span.has_value());
  segment = result.span->Find("segment:analytics_REALTIME__0__0");
  ASSERT_NE(segment, nullptr) << result.span->ToString();
  EXPECT_EQ(segment->LabelValue("upsert"), "on");
  EXPECT_NE(segment->ToString().find("valid_docs=1"), std::string::npos)
      << segment->ToString();
}

TEST_F(UpsertTableTest, LatestRowWinsAcrossSealedSegments) {
  StreamTopic* topic = CreateTopic();
  // Flush every 4 rows so upserts cross segment boundaries.
  ASSERT_TRUE(
      cluster_->leader_controller()->AddTable(UpsertConfig(4)).ok());
  for (int64_t i = 0; i < 8; ++i) {
    Produce(topic, i % 3, 100 + i);  // Keys 0,1,2 written repeatedly.
  }
  cluster_->DrainRealtime();
  // Rows 5,6,7 carry the latest value per key: member 2 -> 105,
  // member 0 -> 106, member 1 -> 107.
  EXPECT_EQ(Count("SELECT count(*) FROM analytics"), 3);
  auto result = cluster_->Execute("SELECT sum(impressions) FROM analytics");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 105 + 106 + 107);

  // Per-key group counts never exceed 1.
  result = cluster_->Execute(
      "SELECT count(*) FROM analytics GROUP BY memberId TOP 10");
  ASSERT_EQ(result.group_rows.size(), 3u);
  for (const auto& group : result.group_rows) {
    EXPECT_EQ(std::get<int64_t>(group.values[0]), 1);
  }

  // New upserts after sealing kill rows in the sealed segments.
  Produce(topic, 0, 1000);
  cluster_->ProcessRealtimeTicks(2);
  EXPECT_EQ(Count("SELECT count(*) FROM analytics"), 3);
  result = cluster_->Execute("SELECT sum(impressions) FROM analytics");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 1000 + 105 + 107);
}

TEST_F(UpsertTableTest, CompactionDropsDeadRowsAndPreservesResults) {
  StreamTopic* topic = CreateTopic();
  ASSERT_TRUE(
      cluster_->leader_controller()->AddTable(UpsertConfig(6)).ok());
  for (int64_t i = 0; i < 6; ++i) {
    Produce(topic, i % 2, 10 * (i + 1));  // Keys 0 and 1, thrice each.
  }
  cluster_->DrainRealtime();
  const std::string table = "analytics_REALTIME";
  const std::string segment = "analytics_REALTIME__0__0";

  // The sealed segment holds 6 rows, 4 of them dead.
  EXPECT_EQ(cluster_->server(0)->UpsertDeadRows(table, segment), 4u);
  auto before_count = Count("SELECT count(*) FROM analytics");
  auto before_sum = cluster_->Execute("SELECT sum(impressions) FROM analytics");

  // Schedule + run the compaction, then let the bounce reload the segment.
  auto invalid = cluster_->server(0)->UpsertInvalidDocs(table, segment);
  ASSERT_NE(invalid, nullptr);
  cluster_->leader_controller()->ScheduleUpsertCompaction(
      table, segment, EncodeUpsertCompactionPayload(*invalid));
  ASSERT_EQ(cluster_->minion(0)->ProcessTasks(), 1);

  // The rewritten blob kept only the live rows.
  auto blob = cluster_->object_store()->Get("segments/" + table + "/" +
                                            segment);
  ASSERT_TRUE(blob.ok());
  auto rebuilt = ImmutableSegment::DeserializeFromBlob(*blob);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)->num_docs(), 2u);

  // Compaction changes no query result.
  EXPECT_EQ(Count("SELECT count(*) FROM analytics"), before_count);
  auto after_sum = cluster_->Execute("SELECT sum(impressions) FROM analytics");
  EXPECT_DOUBLE_EQ(std::get<double>(after_sum.aggregates[0]),
                   std::get<double>(before_sum.aggregates[0]));
  EXPECT_EQ(cluster_->server(0)->UpsertDeadRows(table, segment), 0u);

  // Upserts keep working against the compacted (rebound) segment.
  Produce(topic, 0, 5000);
  cluster_->ProcessRealtimeTicks(2);
  EXPECT_EQ(Count("SELECT count(*) FROM analytics"), 2);
  auto final_sum = cluster_->Execute("SELECT sum(impressions) FROM analytics");
  EXPECT_DOUBLE_EQ(std::get<double>(final_sum.aggregates[0]), 5000 + 60);
}

// Satellite regression: the purge payload must survive values containing
// '\n' (the old "<column>\n<value>" rendering split at the first newline).
TEST(PurgePayloadTest, NewlineBearingValuesPurgeCleanly) {
  PinotClusterOptions options;
  options.num_minions = 1;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();

  TableConfig config;
  config.name = "analytics";
  config.type = TableType::kOffline;
  config.schema = AnalyticsSchema();
  config.num_replicas = 1;
  ASSERT_TRUE(leader->AddTable(config).ok());

  const std::string weird = "line1\nline2";
  std::vector<AnalyticsRow> rows = {
      {weird, "chrome", 1, {}, 10, 1, 100},
      {weird, "firefox", 2, {}, 20, 2, 100},
      {"us", "chrome", 3, {}, 30, 3, 100},
  };
  SegmentBuildConfig build;
  build.table_name = "analytics_OFFLINE";
  build.segment_name = "seg0";
  auto segment = test::BuildAnalyticsSegment(build, rows);
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", segment->SerializeToBlob())
          .ok());

  // Round-trip sanity.
  std::string column, value;
  ASSERT_TRUE(DecodePurgePayload(EncodePurgePayload("country", weird),
                                 &column, &value)
                  .ok());
  EXPECT_EQ(column, "country");
  EXPECT_EQ(value, weird);

  leader->ScheduleTask({.type = "purge",
                        .physical_table = "analytics_OFFLINE",
                        .segment = "seg0",
                        .payload = EncodePurgePayload("country", weird)});
  EXPECT_EQ(cluster.minion(0)->ProcessTasks(), 1);

  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 1);
  result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE country = 'us'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 1);
}

}  // namespace
}  // namespace pinot
