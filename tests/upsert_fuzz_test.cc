// Upsert latest-row-wins oracle fuzz: random interleavings of ingest,
// sealing, querying, and compaction against a brute-force oracle that keeps
// only the latest row per primary key. Registered in the ASan/UBSan repeat
// stage of scripts/check.sh. Invariants:
//   - after a drain, every aggregate equals the oracle's
//   - no query (including mid-ingest, from a second thread) ever observes
//     two live rows for one primary key
//   - compaction changes no query result
#include <atomic>
#include <map>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "cluster/pinot_cluster.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsRow;
using test::AnalyticsSchema;
using test::ToRow;

constexpr const char* kTable = "analytics_REALTIME";

class UpsertFuzzTest : public ::testing::Test {
 protected:
  UpsertFuzzTest() : clock_(1000) {
    PinotClusterOptions options;
    options.clock = &clock_;
    options.num_servers = 1;
    options.num_minions = 1;
    options.controller_options.completion_max_wait_millis = 0;
    cluster_ = std::make_unique<PinotCluster>(options);
    topic_ = cluster_->streams()->GetOrCreateTopic("analytics-events", 1);

    TableConfig config;
    config.name = "analytics";
    config.type = TableType::kRealtime;
    config.schema = AnalyticsSchema();
    config.num_replicas = 1;
    config.realtime.topic = "analytics-events";
    config.realtime.num_partitions = 1;
    config.realtime.flush_threshold_rows = 7;  // Seal often.
    config.realtime.flush_threshold_millis = 1LL << 40;
    config.upsert_enabled = true;
    config.upsert_key_columns = {"memberId"};
    EXPECT_TRUE(cluster_->leader_controller()->AddTable(config).ok());
  }

  void ProduceRandom(std::mt19937* rng) {
    const int64_t member = (*rng)() % 8;  // Small key pool: many collisions.
    const int64_t impressions = 1 + static_cast<int64_t>((*rng)() % 1000);
    const char* countries[] = {"us", "ca", "de"};
    AnalyticsRow row{countries[(*rng)() % 3],          "chrome", member, {},
                     impressions, static_cast<int64_t>((*rng)() % 10), 100};
    topic_->Produce(std::to_string(member), ToRow(row));
    oracle_[member] = row;  // Arrival order IS latest-row-wins order.
  }

  // Sealed segments only: the consuming segment is hosted too but has no
  // blob to rewrite yet.
  std::vector<std::string> CompactableSegments() {
    std::vector<std::string> sealed;
    for (const auto& segment : cluster_->server(0)->HostedSegments(kTable)) {
      if (cluster_->object_store()->Exists(std::string("segments/") + kTable +
                                           "/" + segment)) {
        sealed.push_back(segment);
      }
    }
    return sealed;
  }

  void CompactRandomSegment(std::mt19937* rng) {
    const auto sealed = CompactableSegments();
    if (sealed.empty()) return;
    const std::string& segment = sealed[(*rng)() % sealed.size()];
    auto invalid = cluster_->server(0)->UpsertInvalidDocs(kTable, segment);
    if (invalid == nullptr || invalid->Empty()) return;
    cluster_->leader_controller()->ScheduleUpsertCompaction(
        kTable, segment, EncodeUpsertCompactionPayload(*invalid));
    cluster_->minion(0)->ProcessTasks();
  }

  // Quiesced equality: drain ingest, then compare every aggregate shape
  // against the oracle.
  void CheckAgainstOracle() {
    cluster_->DrainRealtime();
    int64_t count = 0;
    double sum = 0;
    int64_t min_impressions = INT64_MAX, max_impressions = INT64_MIN;
    int64_t us_count = 0;
    for (const auto& [member, row] : oracle_) {
      ++count;
      sum += static_cast<double>(row.impressions);
      min_impressions = std::min(min_impressions, row.impressions);
      max_impressions = std::max(max_impressions, row.impressions);
      if (row.country == "us") ++us_count;
    }

    auto result = cluster_->Execute(
        "SELECT count(*), sum(impressions), min(impressions), "
        "max(impressions) FROM analytics");
    ASSERT_FALSE(result.partial) << result.error_message;
    EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), count);
    EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[1]), sum);
    if (count > 0) {
      EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[2]),
                       static_cast<double>(min_impressions));
      EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[3]),
                       static_cast<double>(max_impressions));
    }

    result = cluster_->Execute(
        "SELECT count(*) FROM analytics WHERE country = 'us'");
    ASSERT_FALSE(result.partial) << result.error_message;
    EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), us_count);

    // Per-key: exactly one live row carrying the latest impressions value.
    result = cluster_->Execute(
        "SELECT count(*), sum(impressions) FROM analytics GROUP BY memberId "
        "TOP 100");
    ASSERT_FALSE(result.partial) << result.error_message;
    ASSERT_EQ(result.group_rows.size(), oracle_.size());
    for (const auto& group : result.group_rows) {
      const int64_t member = std::get<int64_t>(group.keys[0]);
      ASSERT_EQ(oracle_.count(member), 1u);
      EXPECT_EQ(std::get<int64_t>(group.values[0]), 1) << "member " << member;
      EXPECT_DOUBLE_EQ(std::get<double>(group.values[1]),
                       static_cast<double>(oracle_.at(member).impressions));
    }
  }

  SimulatedClock clock_;
  std::unique_ptr<PinotCluster> cluster_;
  StreamTopic* topic_ = nullptr;
  std::map<int64_t, AnalyticsRow> oracle_;
};

TEST_F(UpsertFuzzTest, RandomInterleavingsMatchOracle) {
  std::mt19937 rng(20260809);
  for (int op = 0; op < 400; ++op) {
    const uint32_t dice = rng() % 100;
    if (dice < 55) {
      ProduceRandom(&rng);
    } else if (dice < 75) {
      cluster_->ProcessRealtimeTicks(1);
    } else if (dice < 85) {
      cluster_->DrainRealtime();  // Forces seals when thresholds are due.
    } else if (dice < 92) {
      CompactRandomSegment(&rng);
    } else {
      CheckAgainstOracle();
      if (HasFatalFailure()) return;
    }
  }
  CheckAgainstOracle();
}

TEST_F(UpsertFuzzTest, CompactionNeverChangesResults) {
  std::mt19937 rng(4242);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 25; ++i) ProduceRandom(&rng);
    cluster_->DrainRealtime();
    CheckAgainstOracle();
    if (HasFatalFailure()) return;
    // Compact every sealed segment with dead rows, one by one; the oracle
    // does not move, so neither may any query result.
    for (const auto& segment : CompactableSegments()) {
      auto invalid = cluster_->server(0)->UpsertInvalidDocs(kTable, segment);
      if (invalid == nullptr || invalid->Empty()) continue;
      cluster_->leader_controller()->ScheduleUpsertCompaction(
          kTable, segment, EncodeUpsertCompactionPayload(*invalid));
      ASSERT_EQ(cluster_->minion(0)->ProcessTasks(), 1);
      CheckAgainstOracle();
      if (HasFatalFailure()) return;
    }
  }
}

// Concurrent ingest + query: a reader thread hammers the per-key group
// count while the main thread produces and ticks. No snapshot a query
// takes may ever pair a superseded row with its successor.
TEST_F(UpsertFuzzTest, ConcurrentQueriesNeverSeeTwoLiveRowsPerKey) {
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto result = cluster_->Execute(
          "SELECT count(*) FROM analytics GROUP BY memberId TOP 100");
      if (result.partial) continue;
      for (const auto& group : result.group_rows) {
        if (std::get<int64_t>(group.values[0]) > 1) {
          violations.fetch_add(1);
        }
      }
    }
  });

  std::mt19937 rng(777);
  for (int op = 0; op < 300; ++op) {
    ProduceRandom(&rng);
    if (op % 3 == 0) cluster_->ProcessRealtimeTicks(1);
    if (op % 50 == 49) CompactRandomSegment(&rng);
  }
  cluster_->DrainRealtime();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0);
  CheckAgainstOracle();
}

}  // namespace
}  // namespace pinot
