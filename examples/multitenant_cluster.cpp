// Multitenancy walkthrough (paper section 4.5): two tenants colocated on
// the same servers share query resources through per-tenant token buckets.
// A misbehaving (noisy) tenant exhausts its own bucket and its queries
// start queueing/timing out, while the quiet tenant colocated on the same
// hardware is unaffected.

#include <cstdio>

#include "cluster/pinot_cluster.h"
#include "segment/segment_builder.h"

using namespace pinot;

namespace {

Schema SimpleSchema() {
  return *Schema::Make({
      FieldSpec::Dimension("key", DataType::kLong),
      FieldSpec::Metric("value", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
}

void CreateTenantTable(PinotCluster& cluster, const std::string& name,
                       const std::string& tenant) {
  Controller* leader = cluster.leader_controller();
  TableConfig config;
  config.name = name;
  config.type = TableType::kOffline;
  config.schema = SimpleSchema();
  config.server_tenant = tenant;
  if (!leader->AddTable(config).ok()) std::abort();

  SegmentBuildConfig build;
  build.table_name = config.PhysicalName();
  build.segment_name = name + "_0";
  SegmentBuilder builder(SimpleSchema(), build);
  for (int64_t i = 0; i < 5000; ++i) {
    Row row;
    row.SetLong("key", i % 97).SetLong("value", i).SetLong("day", 1);
    if (!builder.AddRow(row).ok()) std::abort();
  }
  auto segment = builder.Build();
  if (!leader->UploadSegment(config.PhysicalName(), (*segment)->SerializeToBlob())
           .ok()) {
    std::abort();
  }
}

}  // namespace

int main() {
  PinotClusterOptions options;
  options.num_servers = 2;
  options.broker_options.default_timeout_millis = 10;
  PinotCluster cluster(options);

  // Both tenants are colocated: every server carries both tags.
  for (int i = 0; i < cluster.num_servers(); ++i) {
    cluster.cluster_manager()->RegisterInstance(
        cluster.server(i)->id(), {"server", "noisyTenant", "quietTenant"},
        cluster.server(i));
    // Tight budgets so the effect is visible quickly: ~50ms of burst and
    // 20 tokens (~20ms execution) per second steady state.
    cluster.server(i)->quota_manager()->ConfigureTenant(
        "noisyTenant", {.burst_tokens = 20, .refill_per_second = 20});
    cluster.server(i)->quota_manager()->ConfigureTenant(
        "quietTenant", {.burst_tokens = 20, .refill_per_second = 20});
  }
  CreateTenantTable(cluster, "noisy", "noisyTenant");
  CreateTenantTable(cluster, "quiet", "quietTenant");

  auto run = [&](const char* pql) {
    auto result = cluster.Execute(pql);
    return result;
  };

  // The noisy tenant hammers the cluster with full scans until its bucket
  // runs dry.
  int noisy_ok = 0, noisy_throttled = 0;
  for (int i = 0; i < 600; ++i) {
    auto result = run("SELECT sum(value) FROM noisy WHERE key != 3");
    if (result.partial) {
      ++noisy_throttled;
    } else {
      ++noisy_ok;
    }
  }
  std::printf("noisy tenant: %d served, %d throttled (token bucket dry)\n",
              noisy_ok, noisy_throttled);

  // The quiet tenant's occasional dashboards still get served: its bucket
  // is untouched by the noisy neighbour.
  int quiet_ok = 0, quiet_throttled = 0;
  for (int i = 0; i < 20; ++i) {
    auto result = run("SELECT sum(value) FROM quiet WHERE key = 11");
    if (result.partial) {
      ++quiet_throttled;
    } else {
      ++quiet_ok;
    }
  }
  std::printf("quiet tenant: %d served, %d throttled\n", quiet_ok,
              quiet_throttled);
  return quiet_throttled == 0 ? 0 : 1;
}
