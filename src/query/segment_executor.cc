#include "query/segment_executor.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

#include "query/filter_evaluator.h"
#include "startree/star_tree.h"

namespace pinot {

namespace {

constexpr uint32_t kMissingColumnId = 0xffffffff;

// Maximum number of dictionary ids we are willing to expand a range
// predicate into for star-tree traversal before falling back to raw
// execution.
constexpr size_t kMaxStarTreeIdExpansion = 65536;

// Reads the full value of a column for one document (dictionary decode).
Value ReadDocValue(const ColumnReader& column, uint32_t doc,
                   std::vector<uint32_t>* scratch) {
  if (column.spec().single_value) {
    return column.dictionary().ValueAt(
        static_cast<int>(column.GetDictId(doc)));
  }
  column.GetDictIds(doc, scratch);
  const Dictionary& dict = column.dictionary();
  switch (dict.storage()) {
    case Dictionary::Storage::kInt64: {
      std::vector<int64_t> out;
      out.reserve(scratch->size());
      for (uint32_t id : *scratch) out.push_back(dict.Int64At(id));
      return out;
    }
    case Dictionary::Storage::kDouble: {
      std::vector<double> out;
      out.reserve(scratch->size());
      for (uint32_t id : *scratch) out.push_back(dict.DoubleAt(id));
      return out;
    }
    case Dictionary::Storage::kString: {
      std::vector<std::string> out;
      out.reserve(scratch->size());
      for (uint32_t id : *scratch) out.push_back(dict.StringAt(id));
      return out;
    }
  }
  return Value{};
}

// One aggregation bound to a segment column (or to a constant default when
// the segment predates the column).
struct BoundAggregation {
  AggregationType type = AggregationType::kCount;
  const ColumnReader* column = nullptr;  // Null for COUNT(*) / missing col.
  bool count_star = false;
  double default_double = 0;             // Missing column: constant value.
  Value default_value;

  void Accumulate(uint32_t doc, AggState* state,
                  std::vector<uint32_t>* scratch) const {
    switch (type) {
      case AggregationType::kCount:
        ++state->count;
        return;
      case AggregationType::kSum:
      case AggregationType::kMin:
      case AggregationType::kMax:
      case AggregationType::kAvg: {
        double v = default_double;
        if (column != nullptr) {
          v = column->dictionary().DoubleValueAt(
              static_cast<int>(column->GetDictId(doc)));
        }
        state->AddDouble(v);
        return;
      }
      case AggregationType::kDistinctCount: {
        DistinctSet* distinct = state->MutableDistinct();
        if (column == nullptr) {
          AddValueToDistinct(default_value, distinct);
          ++state->count;
          return;
        }
        const Dictionary& dict = column->dictionary();
        if (column->spec().single_value) {
          AddDictIdToDistinct(dict, column->GetDictId(doc), distinct);
        } else {
          column->GetDictIds(doc, scratch);
          for (uint32_t id : *scratch) {
            AddDictIdToDistinct(dict, id, distinct);
          }
        }
        ++state->count;
        return;
      }
    }
  }

  static void AddDictIdToDistinct(const Dictionary& dict, uint32_t id,
                                  DistinctSet* distinct) {
    switch (dict.storage()) {
      case Dictionary::Storage::kInt64:
        distinct->AddInt64(dict.Int64At(static_cast<int>(id)));
        return;
      case Dictionary::Storage::kDouble:
        distinct->AddDouble(dict.DoubleAt(static_cast<int>(id)));
        return;
      case Dictionary::Storage::kString:
        distinct->AddString(dict.StringAt(static_cast<int>(id)));
        return;
    }
  }

  static void AddValueToDistinct(const Value& v, DistinctSet* distinct) {
    if (const auto* i = std::get_if<int64_t>(&v)) {
      distinct->AddInt64(*i);
    } else if (const auto* d = std::get_if<double>(&v)) {
      distinct->AddDouble(*d);
    } else if (const auto* s = std::get_if<std::string>(&v)) {
      distinct->AddString(*s);
    }
  }
};

Status BindAggregations(const SegmentInterface& segment, const Query& query,
                        std::vector<BoundAggregation>* out) {
  const Schema& schema = segment.schema();
  for (const auto& spec : query.aggregations) {
    BoundAggregation bound;
    bound.type = spec.type;
    if (spec.column.empty()) {
      if (spec.type != AggregationType::kCount) {
        return Status::InvalidArgument("aggregation requires a column: " +
                                       spec.ToString());
      }
      bound.count_star = true;
    } else {
      const int field_index = schema.IndexOf(spec.column);
      if (field_index < 0) {
        return Status::NotFound("unknown aggregation column: " + spec.column);
      }
      const FieldSpec& field = schema.field(field_index);
      if (spec.type != AggregationType::kCount &&
          spec.type != AggregationType::kDistinctCount) {
        if (field.type == DataType::kString) {
          return Status::InvalidArgument(
              "numeric aggregation on string column: " + spec.column);
        }
        if (!field.single_value) {
          return Status::InvalidArgument(
              "numeric aggregation on multi-value column: " + spec.column);
        }
      }
      bound.column = segment.GetColumn(spec.column);
      if (bound.column == nullptr) {
        bound.default_value = schema.EffectiveDefault(field_index);
        bound.default_double = ValueToDouble(bound.default_value);
      }
    }
    out->push_back(std::move(bound));
  }
  return Status::OK();
}

// --- Group-by helpers ------------------------------------------------------

// Per-segment group keys are raw dictionary-id bytes (fast); they are
// re-encoded into value-based keys before leaving the segment so results
// merge correctly across segments.
void AppendIdToKey(uint32_t id, std::string* key) {
  char bytes[4];
  std::memcpy(bytes, &id, 4);
  key->append(bytes, 4);
}

struct GroupByColumn {
  const ColumnReader* column = nullptr;  // Null -> missing (default value).
  Value default_value;
  bool single_value = true;
};

// Decodes a dict-id key back into group values.
std::vector<Value> DecodeGroupKey(const std::string& key,
                                  const std::vector<GroupByColumn>& columns) {
  std::vector<Value> values;
  values.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    uint32_t id;
    std::memcpy(&id, key.data() + i * 4, 4);
    if (columns[i].column == nullptr || id == kMissingColumnId) {
      values.push_back(columns[i].default_value);
    } else {
      values.push_back(
          columns[i].column->dictionary().ValueAt(static_cast<int>(id)));
    }
  }
  return values;
}

using LocalGroups = std::unordered_map<std::string, std::vector<AggState>>;

// Emits one (doc, group-key) contribution; recursion handles multi-value
// group columns by exploding every entry combination.
template <typename Fn>
void ForEachGroupKey(const std::vector<GroupByColumn>& columns, uint32_t doc,
                     size_t index, std::string* key,
                     std::vector<std::vector<uint32_t>>* scratch, Fn&& fn) {
  if (index == columns.size()) {
    fn(*key);
    return;
  }
  const GroupByColumn& gb = columns[index];
  const size_t key_size = key->size();
  if (gb.column == nullptr) {
    AppendIdToKey(kMissingColumnId, key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
    return;
  }
  if (gb.single_value) {
    AppendIdToKey(gb.column->GetDictId(doc), key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
    return;
  }
  std::vector<uint32_t>& ids = (*scratch)[index];
  gb.column->GetDictIds(doc, &ids);
  if (ids.empty()) {
    AppendIdToKey(kMissingColumnId, key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
    return;
  }
  for (uint32_t id : ids) {
    AppendIdToKey(id, key);
    ForEachGroupKey(columns, doc, index + 1, key, scratch, fn);
    key->resize(key_size);
  }
}

void FlushLocalGroups(const std::vector<GroupByColumn>& columns,
                      LocalGroups&& local, PartialResult* out) {
  for (auto& [key, states] : local) {
    std::vector<Value> values = DecodeGroupKey(key, columns);
    std::string value_key = EncodeGroupKey(values);
    auto it = out->groups.find(value_key);
    if (it == out->groups.end()) {
      PartialResult::GroupEntry entry;
      entry.keys = std::move(values);
      entry.states = std::move(states);
      out->groups.emplace(std::move(value_key), std::move(entry));
    } else {
      for (size_t i = 0; i < states.size(); ++i) {
        it->second.states[i].Merge(std::move(states[i]));
      }
    }
  }
}

// --- Star-tree path --------------------------------------------------------

// Collects the AND-of-leaves predicate list from a filter tree; returns
// false when the tree has ORs across columns or nesting the star-tree
// traversal cannot serve.
bool FlattenConjunction(const FilterNode& node,
                        std::vector<const Predicate*>* out) {
  switch (node.kind) {
    case FilterNode::Kind::kLeaf:
      out->push_back(&node.predicate);
      return true;
    case FilterNode::Kind::kAnd:
      for (const auto& child : node.children) {
        if (!FlattenConjunction(child, out)) return false;
      }
      return true;
    case FilterNode::Kind::kOr:
      return false;
  }
  return false;
}

bool StarTreeEligible(const SegmentInterface& segment, const Query& query,
                      std::vector<const Predicate*>* predicates) {
  const StarTree* tree = segment.star_tree();
  if (tree == nullptr) return false;
  if (!query.IsAggregation()) return false;
  for (const auto& spec : query.aggregations) {
    switch (spec.type) {
      case AggregationType::kCount:
        if (!spec.column.empty() &&
            tree->MetricIndex(spec.column) < 0) {
          return false;
        }
        break;
      case AggregationType::kSum:
      case AggregationType::kMin:
      case AggregationType::kMax:
      case AggregationType::kAvg:
        if (tree->MetricIndex(spec.column) < 0) return false;
        break;
      case AggregationType::kDistinctCount:
        return false;  // Needs raw data (paper section 2).
    }
  }
  for (const auto& column : query.group_by) {
    if (tree->DimensionIndex(column) < 0) return false;
  }
  if (query.filter.has_value()) {
    if (!FlattenConjunction(*query.filter, predicates)) return false;
    for (const Predicate* pred : *predicates) {
      if (tree->DimensionIndex(pred->column) < 0) return false;
      if (pred->op == PredicateOp::kNotEq || pred->op == PredicateOp::kNotIn) {
        return false;
      }
    }
  }
  return true;
}

Status ExecuteWithStarTree(const SegmentInterface& segment,
                           const Query& query,
                           const std::vector<const Predicate*>& predicates,
                           PartialResult* out) {
  const StarTree& tree = *segment.star_tree();
  const int num_dims = static_cast<int>(tree.config().dimensions.size());

  // Build per-dimension specs: matching dict ids + group-by flags.
  std::vector<StarTree::DimensionSpec> specs(num_dims);
  for (const Predicate* pred : predicates) {
    const int dim = tree.DimensionIndex(pred->column);
    const ColumnReader* column = segment.GetColumn(pred->column);
    if (column == nullptr) {
      return Status::Internal("star-tree dimension column missing");
    }
    const DictIdMatch match = MatchDictIds(column->dictionary(), *pred);
    if (match.match_none) return Status::OK();  // Empty result.
    if (match.match_all) continue;
    StarTree::DimensionSpec& spec = specs[dim];
    std::vector<uint32_t> ids;
    if (match.contiguous) {
      if (static_cast<size_t>(match.hi - match.lo + 1) >
          kMaxStarTreeIdExpansion) {
        return Status::ResourceExhausted("star-tree id expansion too large");
      }
      for (int id = match.lo; id <= match.hi; ++id) {
        ids.push_back(static_cast<uint32_t>(id));
      }
    } else {
      ids = match.ids;
    }
    if (spec.has_predicate) {
      // Two predicates on the same dimension: intersect the id sets.
      std::vector<uint32_t> merged;
      std::set_intersection(spec.matching_ids.begin(),
                            spec.matching_ids.end(), ids.begin(), ids.end(),
                            std::back_inserter(merged));
      spec.matching_ids = std::move(merged);
      if (spec.matching_ids.empty()) return Status::OK();
    } else {
      spec.has_predicate = true;
      spec.matching_ids = std::move(ids);
    }
  }
  std::vector<int> group_dims;
  std::vector<GroupByColumn> group_columns;
  for (const auto& column : query.group_by) {
    const int dim = tree.DimensionIndex(column);
    specs[dim].group_by = true;
    group_dims.push_back(dim);
    GroupByColumn gb;
    gb.column = segment.GetColumn(column);
    gb.single_value = true;
    group_columns.push_back(gb);
  }

  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  tree.CollectRecordRanges(specs, &ranges);

  // Aggregate over the collected preaggregated records.
  std::vector<int> metric_indexes;
  for (const auto& spec : query.aggregations) {
    metric_indexes.push_back(
        spec.column.empty() ? -1 : tree.MetricIndex(spec.column));
  }

  // Predicate dims needing per-record re-checks.
  std::vector<int> check_dims;
  for (int d = 0; d < num_dims; ++d) {
    if (specs[d].has_predicate) check_dims.push_back(d);
  }

  const size_t num_aggs = query.aggregations.size();
  std::vector<AggState> totals(num_aggs);
  LocalGroups local;
  std::string key;
  uint64_t records_scanned = 0;

  for (const auto& [begin, end] : ranges) {
    for (uint32_t record = begin; record < end; ++record) {
      ++records_scanned;
      bool keep = true;
      for (int dim : check_dims) {
        const uint32_t value = tree.DimValue(dim, record);
        if (!std::binary_search(specs[dim].matching_ids.begin(),
                                specs[dim].matching_ids.end(), value)) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;

      std::vector<AggState>* states = &totals;
      if (!group_dims.empty()) {
        key.clear();
        for (int dim : group_dims) {
          AppendIdToKey(tree.DimValue(dim, record), &key);
        }
        auto [it, inserted] = local.try_emplace(key);
        if (inserted) it->second.resize(num_aggs);
        states = &it->second;
      }

      for (size_t a = 0; a < num_aggs; ++a) {
        AggState& state = (*states)[a];
        const int metric = metric_indexes[a];
        switch (query.aggregations[a].type) {
          case AggregationType::kCount:
            state.count += tree.Count(record);
            break;
          case AggregationType::kSum:
          case AggregationType::kAvg:
          case AggregationType::kMin:
          case AggregationType::kMax:
            state.AddPreaggregated(tree.MetricSum(metric, record),
                                   tree.MetricMin(metric, record),
                                   tree.MetricMax(metric, record),
                                   tree.Count(record));
            break;
          case AggregationType::kDistinctCount:
            break;  // Excluded by eligibility.
        }
      }
      out->stats.docs_matched += tree.Count(record);
    }
  }

  out->stats.star_tree_records_scanned += records_scanned;
  out->stats.used_star_tree = true;

  if (group_dims.empty()) {
    if (out->aggregates.empty()) {
      out->aggregates = std::move(totals);
    } else {
      for (size_t i = 0; i < totals.size(); ++i) {
        out->aggregates[i].Merge(std::move(totals[i]));
      }
    }
  } else {
    FlushLocalGroups(group_columns, std::move(local), out);
  }
  return Status::OK();
}

// --- Metadata-only path ----------------------------------------------------

bool TryMetadataOnlyPlan(const SegmentInterface& segment, const Query& query,
                         PartialResult* out) {
  if (!query.IsAggregation() || query.HasGroupBy() ||
      query.filter.has_value()) {
    return false;
  }
  std::vector<AggState> states(query.aggregations.size());
  for (size_t i = 0; i < query.aggregations.size(); ++i) {
    const auto& spec = query.aggregations[i];
    if (spec.type == AggregationType::kCount && spec.column.empty()) {
      states[i].count = segment.num_docs();
      continue;
    }
    if (spec.type == AggregationType::kMin ||
        spec.type == AggregationType::kMax) {
      const ColumnReader* column = segment.GetColumn(spec.column);
      if (column == nullptr || !column->spec().single_value ||
          column->spec().type == DataType::kString ||
          segment.num_docs() == 0) {
        return false;
      }
      const ColumnStats& stats = column->stats();
      states[i].AddPreaggregated(0, ValueToDouble(stats.min_value),
                                 ValueToDouble(stats.max_value),
                                 segment.num_docs());
      states[i].sum = 0;
      continue;
    }
    return false;
  }
  if (out->aggregates.empty()) {
    out->aggregates = std::move(states);
  } else {
    for (size_t i = 0; i < states.size(); ++i) {
      out->aggregates[i].Merge(std::move(states[i]));
    }
  }
  out->stats.answered_from_metadata = true;
  out->stats.docs_matched += segment.num_docs();
  return true;
}

// --- Raw path: selection ---------------------------------------------------

Status ExecuteSelection(const SegmentInterface& segment, const Query& query,
                        const DocIdSet& docs, PartialResult* out) {
  const Schema& schema = segment.schema();
  std::vector<std::string> columns;
  if (query.selection_columns.size() == 1 &&
      query.selection_columns[0] == "*") {
    columns = schema.FieldNames();
  } else {
    columns = query.selection_columns;
  }
  struct Projected {
    const ColumnReader* column;
    Value default_value;
  };
  std::vector<Projected> projected;
  for (const auto& name : columns) {
    const int field_index = schema.IndexOf(name);
    if (field_index < 0) {
      return Status::NotFound("unknown selection column: " + name);
    }
    Projected p;
    p.column = segment.GetColumn(name);
    if (p.column == nullptr) {
      p.default_value = schema.EffectiveDefault(field_index);
    }
    projected.push_back(std::move(p));
  }

  const bool need_all = !query.order_by.empty();
  const size_t limit = static_cast<size_t>(query.limit);
  std::vector<uint32_t> scratch;
  bool done = false;
  uint64_t scanned = 0;
  docs.ForEachRange([&](uint32_t begin, uint32_t end) {
    if (done) return;
    for (uint32_t doc = begin; doc < end && !done; ++doc) {
      ++scanned;
      std::vector<Value> row;
      row.reserve(projected.size());
      for (const auto& p : projected) {
        if (p.column == nullptr) {
          row.push_back(p.default_value);
        } else {
          row.push_back(ReadDocValue(*p.column, doc, &scratch));
        }
      }
      out->selection_rows.push_back(std::move(row));
      if (!need_all && out->selection_rows.size() >= limit) done = true;
    }
  });
  out->stats.docs_scanned += scanned;
  return Status::OK();
}

}  // namespace

bool CanUseStarTree(const SegmentInterface& segment, const Query& query) {
  std::vector<const Predicate*> predicates;
  return StarTreeEligible(segment, query, &predicates);
}

Status ExecuteQueryOnSegment(const SegmentInterface& segment,
                             const Query& query, PartialResult* out) {
  out->total_docs += segment.num_docs();
  out->stats.segments_queried += 1;

  // 1. Metadata-only plan.
  if (TryMetadataOnlyPlan(segment, query, out)) return Status::OK();

  // 2. Star-tree plan.
  {
    std::vector<const Predicate*> predicates;
    if (StarTreeEligible(segment, query, &predicates)) {
      Status st = ExecuteWithStarTree(segment, query, predicates, out);
      // ResourceExhausted -> predicate expansion too large; fall through to
      // the raw plan.
      if (!st.IsQuotaExceeded() &&
          st.code() != StatusCode::kResourceExhausted) {
        return st;
      }
    }
  }

  // 3. Raw plan.
  FilterEvaluator evaluator(segment, &out->stats);
  PINOT_ASSIGN_OR_RETURN(DocIdSet docs, evaluator.Evaluate(query.filter));
  out->stats.docs_matched += docs.Cardinality();

  if (!query.IsAggregation()) {
    return ExecuteSelection(segment, query, docs, out);
  }

  std::vector<BoundAggregation> bound;
  PINOT_RETURN_NOT_OK(BindAggregations(segment, query, &bound));

  if (!query.HasGroupBy()) {
    std::vector<AggState> states(bound.size());
    // COUNT-only queries need no per-document work.
    bool count_only = true;
    for (const auto& b : bound) {
      if (b.type != AggregationType::kCount) {
        count_only = false;
        break;
      }
    }
    if (count_only) {
      const int64_t matched = static_cast<int64_t>(docs.Cardinality());
      for (auto& state : states) state.count = matched;
    } else {
      std::vector<uint32_t> scratch;
      uint64_t scanned = 0;
      docs.ForEachRange([&](uint32_t begin, uint32_t end) {
        scanned += end - begin;
        for (uint32_t doc = begin; doc < end; ++doc) {
          for (size_t i = 0; i < bound.size(); ++i) {
            bound[i].Accumulate(doc, &states[i], &scratch);
          }
        }
      });
      out->stats.docs_scanned += scanned;
    }
    if (out->aggregates.empty()) {
      out->aggregates = std::move(states);
    } else {
      for (size_t i = 0; i < states.size(); ++i) {
        out->aggregates[i].Merge(std::move(states[i]));
      }
    }
    return Status::OK();
  }

  // Group-by over raw documents.
  const Schema& schema = segment.schema();
  std::vector<GroupByColumn> group_columns;
  for (const auto& name : query.group_by) {
    const int field_index = schema.IndexOf(name);
    if (field_index < 0) {
      return Status::NotFound("unknown group-by column: " + name);
    }
    GroupByColumn gb;
    gb.column = segment.GetColumn(name);
    gb.single_value = schema.field(field_index).single_value;
    if (gb.column == nullptr) {
      gb.default_value = schema.EffectiveDefault(field_index);
    }
    group_columns.push_back(std::move(gb));
  }

  LocalGroups local;
  std::string key;
  std::vector<std::vector<uint32_t>> mv_scratch(group_columns.size());
  std::vector<uint32_t> scratch;
  const size_t num_aggs = bound.size();
  uint64_t scanned = 0;
  docs.ForEachRange([&](uint32_t begin, uint32_t end) {
    scanned += end - begin;
    for (uint32_t doc = begin; doc < end; ++doc) {
      key.clear();
      ForEachGroupKey(group_columns, doc, 0, &key, &mv_scratch,
                      [&](const std::string& group_key) {
                        auto [it, inserted] = local.try_emplace(group_key);
                        if (inserted) it->second.resize(num_aggs);
                        for (size_t i = 0; i < num_aggs; ++i) {
                          bound[i].Accumulate(doc, &it->second[i], &scratch);
                        }
                      });
    }
  });
  out->stats.docs_scanned += scanned;
  FlushLocalGroups(group_columns, std::move(local), out);
  return Status::OK();
}

}  // namespace pinot
