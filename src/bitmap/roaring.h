#ifndef PINOT_BITMAP_ROARING_H_
#define PINOT_BITMAP_ROARING_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace pinot {

namespace bitmap_internal {

/// Number of values at which an array container is promoted to a bitmap
/// container (the standard roaring threshold).
inline constexpr size_t kArrayContainerMax = 4096;

/// 65536-bit bitset for one 16-bit chunk.
struct BitsetContainer {
  std::array<uint64_t, 1024> words{};
  uint32_t cardinality = 0;
};

/// Sorted list of 16-bit values, used while cardinality <= 4096.
struct ArrayContainer {
  std::vector<uint16_t> values;
};

/// Run-length encoded container: sorted, non-overlapping runs
/// [start, start + length] inclusive. Produced by RunOptimize() when runs
/// encode the chunk more compactly.
struct RunContainer {
  struct Run {
    uint16_t start;
    uint16_t length;  // Run covers start .. start + length, inclusive.
  };
  std::vector<Run> runs;
};

}  // namespace bitmap_internal

/// A compressed bitmap over uint32 document ids, implemented from scratch
/// after the Roaring design (Chambi, Lemire et al.): values are partitioned
/// by their high 16 bits into chunks, and each chunk is stored as a sorted
/// array (sparse), a 64Ki bitset (dense), or a run container (contiguous).
///
/// This is the data structure behind Pinot's inverted indexes and filter
/// intermediate results (paper section 4.2; both Pinot and Druid use roaring
/// bitmaps).
class RoaringBitmap {
 public:
  RoaringBitmap() = default;
  RoaringBitmap(RoaringBitmap&&) = default;
  RoaringBitmap& operator=(RoaringBitmap&&) = default;
  /// Deep copy (containers are duplicated).
  RoaringBitmap(const RoaringBitmap& other);
  RoaringBitmap& operator=(const RoaringBitmap& other);

  /// Builds a bitmap from any order of values.
  static RoaringBitmap FromValues(const std::vector<uint32_t>& values);

  /// Builds a bitmap containing [begin, end).
  static RoaringBitmap FromRange(uint32_t begin, uint32_t end);

  void Add(uint32_t value);

  /// Adds all values in [begin, end).
  void AddRange(uint32_t begin, uint32_t end);

  bool Contains(uint32_t value) const;
  uint64_t Cardinality() const;
  bool Empty() const { return containers_.empty(); }

  /// Smallest value; undefined when empty (asserted).
  uint32_t Minimum() const;
  /// Largest value; undefined when empty (asserted).
  uint32_t Maximum() const;

  RoaringBitmap And(const RoaringBitmap& other) const;
  RoaringBitmap Or(const RoaringBitmap& other) const;
  RoaringBitmap AndNot(const RoaringBitmap& other) const;

  /// Complement within the universe [0, universe_size).
  RoaringBitmap Not(uint32_t universe_size) const;

  /// In-place union: containers of `other` are merged into this bitmap
  /// without rebuilding the untouched ones. Bitset destinations absorb
  /// array/run/bitset sources word-at-a-time with no allocation.
  void OrWith(const RoaringBitmap& other);

  /// In-place intersection: containers missing from `other` are dropped,
  /// bitset∧bitset pairs are AND-ed word-at-a-time into this bitmap's own
  /// words, and everything else goes through the pairwise kernels.
  void AndWith(const RoaringBitmap& other);

  /// Bulk union of many bitmaps (the wide-range inverted-index path).
  /// Groups all containers sharing a 16-bit chunk key and ORs each group
  /// once — into a shared bitset accumulator when the group is dense —
  /// instead of materializing N-1 intermediate bitmaps. Null entries are
  /// not allowed; an empty input list yields an empty bitmap.
  static RoaringBitmap OrMany(const std::vector<const RoaringBitmap*>& inputs);

  /// Converts containers to run containers where that is smaller. Matches
  /// roaring's runOptimize(); called after inverted index construction.
  void RunOptimize();

  /// Invokes `fn` for every value in ascending order.
  void ForEach(const std::function<void(uint32_t)>& fn) const;

  /// Invokes `fn(begin, end)` for every maximal contiguous run [begin, end)
  /// in ascending order. Lets scan operators process contiguous doc ids
  /// without per-document dispatch.
  void ForEachRange(
      const std::function<void(uint32_t, uint32_t)>& fn) const;

  /// Block-at-a-time iteration for batched scan operators: invokes
  /// `fn(begin, count, values)` for ascending blocks of at most
  /// `block_size` values. Run containers emit their runs directly as
  /// contiguous blocks (`values == nullptr`, covering
  /// [begin, begin + count)); array and bitset containers are decoded
  /// per-container into an internal buffer passed as `values`
  /// (`begin` is then the first value). `block_size` must be positive.
  void ForEachBlock(
      uint32_t block_size,
      const std::function<void(uint32_t, uint32_t, const uint32_t*)>& fn)
      const;

  std::vector<uint32_t> ToVector() const;

  bool operator==(const RoaringBitmap& other) const;

  /// Approximate heap footprint of the container data, in bytes. Used to
  /// compare index sizes (Druid's always-on inverted indexes lead to a
  /// larger footprint; see paper section 6).
  uint64_t SizeInBytes() const;

  /// Number of containers by kind, for tests and stats.
  struct ContainerStats {
    int array_containers = 0;
    int bitset_containers = 0;
    int run_containers = 0;
  };
  ContainerStats GetContainerStats() const;

  void Serialize(ByteWriter* writer) const;
  static Result<RoaringBitmap> Deserialize(ByteReader* reader);

 private:
  enum class Kind : uint8_t { kArray = 0, kBitset = 1, kRun = 2 };

  struct Container {
    Kind kind = Kind::kArray;
    bitmap_internal::ArrayContainer array;
    std::unique_ptr<bitmap_internal::BitsetContainer> bitset;
    bitmap_internal::RunContainer run;

    uint32_t Cardinality() const;
    bool Contains(uint16_t low) const;
  };

  struct Entry {
    uint16_t key;  // High 16 bits.
    Container container;
  };

  // Returns the index of the entry with `key`, or -1.
  int FindEntry(uint16_t key) const;
  // Returns entry with `key`, creating it (as empty array container) if
  // missing; keeps entries sorted by key.
  Entry& GetOrCreateEntry(uint16_t key);

  static void ToBitset(const Container& c,
                       bitmap_internal::BitsetContainer* out);
  // Converts a bitset into the most compact of array/bitset by cardinality.
  static Container FromBitset(bitmap_internal::BitsetContainer bitset);
  // Picks run vs array vs bitset for a set expressed as sorted, coalesced
  // runs, using the RunOptimize() size heuristics, so kernel outputs stay
  // as compact as freshly optimized containers.
  static Container NormalizedFromRuns(bitmap_internal::RunContainer rc);
  static Container CloneContainer(const Container& src);
  // Container-pair-specialized binary kernels (one case per
  // array/bitset/run pairing; see the .cc).
  static Container AndContainers(const Container& a, const Container& b);
  static Container OrContainers(const Container& a, const Container& b);
  static Container AndNotContainers(const Container& a, const Container& b);
  // In-place union of `src` into `dst`; bitset destinations are updated
  // without allocation.
  static void OrContainerInPlace(Container* dst, const Container& src);
  static void ForEachInContainer(const Container& c, uint32_t base,
                                 const std::function<void(uint32_t)>& fn);

  std::vector<Entry> containers_;  // Sorted by key.
};

}  // namespace pinot

#endif  // PINOT_BITMAP_ROARING_H_
