#include "segment/dictionary.h"

#include <gtest/gtest.h>

namespace pinot {
namespace {

TEST(DictionaryTest, SortedInt64AssignsIdsInValueOrder) {
  Dictionary dict = Dictionary::BuildSortedInt64({30, 10, 20, 10});
  EXPECT_EQ(dict.size(), 3);
  EXPECT_TRUE(dict.sorted());
  EXPECT_EQ(dict.Int64At(0), 10);
  EXPECT_EQ(dict.Int64At(1), 20);
  EXPECT_EQ(dict.Int64At(2), 30);
  EXPECT_EQ(dict.IndexOfInt64(20), 1);
  EXPECT_EQ(dict.IndexOfInt64(25), -1);
}

TEST(DictionaryTest, SortedStringLookup) {
  Dictionary dict = Dictionary::BuildSortedString({"firefox", "chrome",
                                                   "safari", "chrome"});
  EXPECT_EQ(dict.size(), 3);
  EXPECT_EQ(dict.StringAt(0), "chrome");
  EXPECT_EQ(dict.IndexOfString("safari"), 2);
  EXPECT_EQ(dict.IndexOfString("opera"), -1);
  EXPECT_EQ(std::get<std::string>(dict.MinValue()), "chrome");
  EXPECT_EQ(std::get<std::string>(dict.MaxValue()), "safari");
}

TEST(DictionaryTest, RangeForInclusiveExclusive) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20, 30, 40, 50});
  // x >= 20 AND x <= 40 -> ids [1, 3]
  auto range = dict.RangeFor(Value{int64_t{20}}, true, Value{int64_t{40}},
                             true);
  EXPECT_EQ(range.lo, 1);
  EXPECT_EQ(range.hi, 3);
  // x > 20 AND x < 40 -> ids [2, 2]
  range = dict.RangeFor(Value{int64_t{20}}, false, Value{int64_t{40}}, false);
  EXPECT_EQ(range.lo, 2);
  EXPECT_EQ(range.hi, 2);
  // x > 50 -> empty
  range = dict.RangeFor(Value{int64_t{50}}, false, std::nullopt, true);
  EXPECT_TRUE(range.empty());
  // Unbounded -> everything.
  range = dict.RangeFor(std::nullopt, true, std::nullopt, true);
  EXPECT_EQ(range.lo, 0);
  EXPECT_EQ(range.hi, 4);
  // Bounds between values.
  range = dict.RangeFor(Value{int64_t{15}}, true, Value{int64_t{35}}, true);
  EXPECT_EQ(range.lo, 1);
  EXPECT_EQ(range.hi, 2);
}

TEST(DictionaryTest, MutableAssignsArrivalOrderIds) {
  Dictionary dict = Dictionary::CreateMutable(DataType::kString);
  EXPECT_FALSE(dict.sorted());
  EXPECT_EQ(dict.GetOrAdd(Value{std::string("b")}), 0);
  EXPECT_EQ(dict.GetOrAdd(Value{std::string("a")}), 1);
  EXPECT_EQ(dict.GetOrAdd(Value{std::string("b")}), 0);
  EXPECT_EQ(dict.size(), 2);
  EXPECT_EQ(dict.IndexOfString("a"), 1);
}

TEST(DictionaryTest, MutableCompareValueAt) {
  Dictionary dict = Dictionary::CreateMutable(DataType::kLong);
  dict.GetOrAdd(Value{int64_t{50}});
  dict.GetOrAdd(Value{int64_t{10}});
  EXPECT_GT(dict.CompareValueAt(0, Value{int64_t{20}}), 0);
  EXPECT_LT(dict.CompareValueAt(1, Value{int64_t{20}}), 0);
  EXPECT_EQ(dict.CompareValueAt(0, Value{int64_t{50}}), 0);
}

TEST(DictionaryTest, ToSortedRemapsIds) {
  Dictionary dict = Dictionary::CreateMutable(DataType::kLong);
  dict.GetOrAdd(Value{int64_t{50}});  // old id 0
  dict.GetOrAdd(Value{int64_t{10}});  // old id 1
  dict.GetOrAdd(Value{int64_t{30}});  // old id 2
  std::vector<int> old_to_new;
  Dictionary sorted = dict.ToSorted(&old_to_new);
  EXPECT_TRUE(sorted.sorted());
  EXPECT_EQ(sorted.Int64At(0), 10);
  EXPECT_EQ(sorted.Int64At(1), 30);
  EXPECT_EQ(sorted.Int64At(2), 50);
  EXPECT_EQ(old_to_new, (std::vector<int>{2, 0, 1}));
}

TEST(DictionaryTest, SerializeRoundTripSorted) {
  Dictionary dict = Dictionary::BuildSortedDouble({1.5, -2.25, 7.0});
  ByteWriter writer;
  dict.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = Dictionary::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 3);
  EXPECT_DOUBLE_EQ(restored->DoubleAt(0), -2.25);
  EXPECT_EQ(restored->IndexOfDouble(7.0), 2);
}

TEST(DictionaryTest, SerializeRoundTripMutableRebuildsMaps) {
  Dictionary dict = Dictionary::CreateMutable(DataType::kString);
  dict.GetOrAdd(Value{std::string("z")});
  dict.GetOrAdd(Value{std::string("a")});
  ByteWriter writer;
  dict.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto restored = Dictionary::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->sorted());
  EXPECT_EQ(restored->IndexOfString("z"), 0);
  EXPECT_EQ(restored->IndexOfString("a"), 1);
}

TEST(DictionaryTest, IndexOfCoercesNumericValueKinds) {
  Dictionary dict = Dictionary::BuildSortedInt64({10, 20});
  // A double Value against an integral column coerces.
  EXPECT_EQ(dict.IndexOf(Value{20.0}), 1);
}

}  // namespace
}  // namespace pinot
