#include "stream/stream.h"

#include <cassert>

namespace pinot {

StreamTopic::StreamTopic(std::string name, int num_partitions, Clock* clock)
    : name_(std::move(name)), clock_(clock) {
  assert(num_partitions > 0);
  partitions_.reserve(num_partitions);
  for (int i = 0; i < num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

std::pair<int, int64_t> StreamTopic::Produce(const std::string& key,
                                             Row row) {
  const int partition = KafkaPartition(key, num_partitions());
  const int64_t offset = ProduceToPartition(partition, key, std::move(row));
  return {partition, offset};
}

int64_t StreamTopic::ProduceToPartition(int partition, const std::string& key,
                                        Row row) {
  Partition& p = *partitions_[partition];
  std::lock_guard<std::mutex> lock(p.mutex);
  StreamMessage message;
  message.offset = p.next_offset++;
  message.key = key;
  message.row = std::move(row);
  message.timestamp_millis = clock_->NowMillis();
  p.log.push_back(std::move(message));
  return p.next_offset - 1;
}

Result<std::vector<StreamMessage>> StreamTopic::Fetch(int partition,
                                                      int64_t offset,
                                                      int max_messages) const {
  if (partition < 0 || partition >= num_partitions()) {
    return Status::InvalidArgument("no such partition");
  }
  const Partition& p = *partitions_[partition];
  std::lock_guard<std::mutex> lock(p.mutex);
  if (offset < p.base_offset) {
    return Status::OutOfRange("offset below retention horizon");
  }
  std::vector<StreamMessage> out;
  const int64_t start = offset - p.base_offset;
  for (int64_t i = start;
       i < static_cast<int64_t>(p.log.size()) &&
       static_cast<int>(out.size()) < max_messages;
       ++i) {
    out.push_back(p.log[i]);
  }
  return out;
}

int64_t StreamTopic::LatestOffset(int partition) const {
  const Partition& p = *partitions_[partition];
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.next_offset;
}

int64_t StreamTopic::EarliestOffset(int partition) const {
  const Partition& p = *partitions_[partition];
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.base_offset;
}

void StreamTopic::EnforceRetention(int64_t retention_millis) {
  const int64_t horizon = clock_->NowMillis() - retention_millis;
  for (auto& partition : partitions_) {
    std::lock_guard<std::mutex> lock(partition->mutex);
    while (!partition->log.empty() &&
           partition->log.front().timestamp_millis < horizon) {
      partition->log.pop_front();
      ++partition->base_offset;
    }
  }
}

StreamTopic* StreamRegistry::GetOrCreateTopic(const std::string& name,
                                              int num_partitions) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = topics_.find(name);
  if (it != topics_.end()) return it->second.get();
  auto topic = std::make_unique<StreamTopic>(name, num_partitions, clock_);
  StreamTopic* raw = topic.get();
  topics_.emplace(name, std::move(topic));
  return raw;
}

StreamTopic* StreamRegistry::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second.get();
}

}  // namespace pinot
