#include "cluster/controller.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "segment/segment.h"
#include "stream/stream.h"

namespace pinot {

Controller::Controller(std::string id, ClusterContext ctx, Options options)
    : id_(std::move(id)),
      ctx_(std::move(ctx)),
      options_(options),
      metrics_(ctx_.metrics != nullptr ? ctx_.metrics
                                       : MetricsRegistry::Default()) {}

Controller::Controller(std::string id, ClusterContext ctx)
    : Controller(std::move(id), std::move(ctx), Options()) {}

void Controller::Start() {
  ctx_.cluster->RegisterController(id_, [this](bool is_leader) {
    if (is_leader) {
      // A fresh, blank completion state machine per leadership term
      // (paper section 3.3.6: controller failover restarts the FSM).
      std::lock_guard<std::mutex> lock(mutex_);
      completion_ = std::make_unique<SegmentCompletionManager>(
          ctx_.clock, options_.completion_max_wait_millis);
    }
    leader_.store(is_leader, std::memory_order_release);
  });
}

Status Controller::StoreTableConfig(const TableConfig& config) {
  ByteWriter writer;
  config.Serialize(&writer);
  ctx_.property_store->Set(zkpaths::TableConfigPath(config.PhysicalName()),
                           writer.TakeBuffer());
  return Status::OK();
}

Result<TableConfig> Controller::GetTableConfig(
    const std::string& physical_table) const {
  PINOT_ASSIGN_OR_RETURN(
      std::string encoded,
      ctx_.property_store->Get(zkpaths::TableConfigPath(physical_table)));
  ByteReader reader(encoded);
  return TableConfig::Deserialize(&reader);
}

std::vector<std::string> Controller::ListTables() const {
  std::vector<std::string> out;
  for (const auto& path : ctx_.property_store->ListPrefix("/CONFIGS/")) {
    out.push_back(path.substr(std::string("/CONFIGS/").size()));
  }
  return out;
}

std::vector<std::string> Controller::PickServers(const TableConfig& config,
                                                 int count) const {
  std::vector<std::string> candidates =
      ctx_.cluster->GetAliveInstancesWithTag(config.server_tenant);
  // Least-loaded first, by current ideal-state segment count for this table.
  const TableView ideal = ctx_.cluster->GetIdealState(config.PhysicalName());
  std::unordered_map<std::string, int> load;
  for (const auto& [segment, states] : ideal) {
    for (const auto& [instance, state] : states) ++load[instance];
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&load](const std::string& a, const std::string& b) {
                     return load[a] < load[b];
                   });
  if (static_cast<int>(candidates.size()) > count) candidates.resize(count);
  return candidates;
}

std::string Controller::ConsumingSegmentName(
    const std::string& physical_table, int partition, int sequence) {
  return physical_table + "__" + std::to_string(partition) + "__" +
         std::to_string(sequence);
}

Status Controller::AddTable(const TableConfig& config) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  const std::string physical = config.PhysicalName();
  if (ctx_.property_store->Exists(zkpaths::TableConfigPath(physical))) {
    return Status::AlreadyExists("table already exists: " + physical);
  }
  // Validate before persisting the config so a failed AddTable leaves no
  // partial state behind.
  StreamTopic* topic = nullptr;
  if (config.type == TableType::kRealtime) {
    if (config.realtime.topic.empty()) {
      return Status::InvalidArgument("realtime table requires a topic");
    }
    topic = ctx_.streams->GetTopic(config.realtime.topic);
    if (topic == nullptr) {
      return Status::NotFound("no such stream topic: " +
                              config.realtime.topic);
    }
  }
  if (config.upsert_enabled) {
    if (config.type != TableType::kRealtime) {
      return Status::InvalidArgument(
          "upsert requires a realtime table: " + physical);
    }
    if (config.upsert_key_columns.empty()) {
      return Status::InvalidArgument(
          "upsert table requires at least one key column: " + physical);
    }
    for (const auto& column : config.upsert_key_columns) {
      const FieldSpec* field = config.schema.GetField(column);
      if (field == nullptr) {
        return Status::InvalidArgument("upsert key column not in schema: " +
                                       column);
      }
      if (!field->single_value) {
        return Status::InvalidArgument("upsert key column is multi-value: " +
                                       column);
      }
    }
    if (!config.star_tree.dimensions.empty()) {
      return Status::InvalidArgument(
          "star-tree cannot apply per-doc validity; not allowed on upsert "
          "table " +
          physical);
    }
  }
  PINOT_RETURN_NOT_OK(StoreTableConfig(config));

  if (config.type == TableType::kRealtime) {
    // One consuming segment per stream partition, started at the current
    // earliest retained offset.
    for (int partition = 0; partition < topic->num_partitions();
         ++partition) {
      const std::vector<std::string> instances =
          PickServers(config, config.num_replicas);
      if (instances.empty()) {
        return Status::Unavailable("no servers available for tenant " +
                                   config.server_tenant);
      }
      PINOT_RETURN_NOT_OK(CreateConsumingSegment(
          config, partition, /*sequence=*/0,
          topic->EarliestOffset(partition), instances));
    }
  }
  return Status::OK();
}

Status Controller::UpdateTableConfig(const TableConfig& config) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  const std::string physical = config.PhysicalName();
  if (!ctx_.property_store->Exists(zkpaths::TableConfigPath(physical))) {
    return Status::NotFound("no such table: " + physical);
  }
  return StoreTableConfig(config);
}

Status Controller::DeleteTable(const std::string& physical_table) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  for (const auto& path : ctx_.property_store->ListPrefix(
           zkpaths::SegmentMetadataPrefix(physical_table))) {
    const std::string segment =
        path.substr(zkpaths::SegmentMetadataPrefix(physical_table).size());
    ctx_.cluster->RemoveSegment(physical_table, segment);
    (void)ctx_.object_store->Delete(
        zkpaths::SegmentBlobKey(physical_table, segment));
    (void)ctx_.property_store->Delete(path);
  }
  return ctx_.property_store->Delete(zkpaths::TableConfigPath(physical_table));
}

Status Controller::CreateConsumingSegment(
    const TableConfig& config, int partition, int sequence,
    int64_t start_offset, const std::vector<std::string>& instances) {
  const std::string physical = config.PhysicalName();
  const std::string segment =
      ConsumingSegmentName(physical, partition, sequence);
  SegmentZkMetadata meta;
  meta.state = SegmentZkMetadata::State::kInProgress;
  meta.partition = partition;
  meta.start_offset = start_offset;
  meta.sequence = sequence;
  ctx_.property_store->Set(zkpaths::SegmentMetadataPath(physical, segment),
                           meta.Encode());
  InstanceStates desired;
  for (const auto& instance : instances) {
    desired[instance] = SegmentState::kConsuming;
  }
  ctx_.cluster->SetSegmentIdealState(physical, segment, desired);
  return Status::OK();
}

void Controller::UpdateTimeBoundary(const std::string& physical_table) {
  // Only offline tables define the hybrid time boundary (section 3.3.3).
  const std::string suffix = "_OFFLINE";
  if (physical_table.size() <= suffix.size() ||
      physical_table.compare(physical_table.size() - suffix.size(),
                             suffix.size(), suffix) != 0) {
    return;
  }
  const std::string logical =
      physical_table.substr(0, physical_table.size() - suffix.size());
  int64_t max_time = INT64_MIN;
  for (const auto& path : ctx_.property_store->ListPrefix(
           zkpaths::SegmentMetadataPrefix(physical_table))) {
    auto encoded = ctx_.property_store->Get(path);
    if (!encoded.ok()) continue;
    auto meta = SegmentZkMetadata::Decode(*encoded);
    if (!meta.ok()) continue;
    max_time = std::max(max_time, meta->max_time);
  }
  if (max_time != INT64_MIN) {
    ctx_.property_store->Set(zkpaths::TimeBoundaryPath(logical),
                             std::to_string(max_time));
  }
}

Status Controller::UploadSegment(const std::string& physical_table,
                                 const std::string& blob) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  PINOT_ASSIGN_OR_RETURN(TableConfig config, GetTableConfig(physical_table));

  // "Unpacks it to ensure its integrity" — deserialization verifies the
  // CRC envelope (section 3.3.5).
  PINOT_ASSIGN_OR_RETURN(std::shared_ptr<ImmutableSegment> segment,
                         ImmutableSegment::DeserializeFromBlob(blob));
  const std::string& segment_name = segment->metadata().segment_name;
  if (segment_name.empty()) {
    return Status::InvalidArgument("segment has no name");
  }

  // Quota check: projected table size after this upload.
  const std::string blob_key =
      zkpaths::SegmentBlobKey(physical_table, segment_name);
  if (config.quota_bytes >= 0) {
    uint64_t current = ctx_.object_store->BytesUnderPrefix(
        "segments/" + physical_table + "/");
    auto existing = ctx_.object_store->Get(blob_key);
    if (existing.ok()) current -= existing->size();
    if (current + blob.size() > static_cast<uint64_t>(config.quota_bytes)) {
      return Status::QuotaExceeded("table over quota: " + physical_table);
    }
  }

  const bool replace =
      ctx_.property_store->Exists(
          zkpaths::SegmentMetadataPath(physical_table, segment_name));

  ctx_.object_store->Put(blob_key, blob);
  SegmentZkMetadata meta;
  meta.state = SegmentZkMetadata::State::kDone;
  meta.partition = segment->metadata().partition_id;
  meta.min_time = segment->metadata().min_time;
  meta.max_time = segment->metadata().max_time;
  meta.crc = Crc32(blob);
  ctx_.property_store->Set(
      zkpaths::SegmentMetadataPath(physical_table, segment_name),
      meta.Encode());
  UpdateTimeBoundary(physical_table);

  if (replace) {
    // Refresh in place: bounce replicas through OFFLINE so they reload the
    // new blob ("segments themselves can be replaced with a newer
    // version", section 3.1).
    TableView ideal = ctx_.cluster->GetIdealState(physical_table);
    auto it = ideal.find(segment_name);
    if (it != ideal.end()) {
      InstanceStates offline_states;
      for (const auto& [instance, state] : it->second) {
        offline_states[instance] = SegmentState::kOffline;
      }
      ctx_.cluster->SetSegmentIdealState(physical_table, segment_name,
                                         offline_states);
      ctx_.cluster->SetSegmentIdealState(physical_table, segment_name,
                                         it->second);
      return Status::OK();
    }
  }
  const std::vector<std::string> instances =
      PickServers(config, config.num_replicas);
  if (instances.empty()) {
    return Status::Unavailable("no servers available for tenant " +
                               config.server_tenant);
  }
  InstanceStates desired;
  for (const auto& instance : instances) {
    desired[instance] = SegmentState::kOnline;
  }
  ctx_.cluster->SetSegmentIdealState(physical_table, segment_name, desired);
  return Status::OK();
}

Status Controller::DeleteSegment(const std::string& physical_table,
                                 const std::string& segment) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  ctx_.cluster->RemoveSegment(physical_table, segment);
  (void)ctx_.object_store->Delete(
      zkpaths::SegmentBlobKey(physical_table, segment));
  PINOT_RETURN_NOT_OK(ctx_.property_store->Delete(
      zkpaths::SegmentMetadataPath(physical_table, segment)));
  UpdateTimeBoundary(physical_table);
  return Status::OK();
}

Status Controller::AddColumn(const std::string& physical_table,
                             const FieldSpec& field) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  PINOT_ASSIGN_OR_RETURN(TableConfig config, GetTableConfig(physical_table));
  PINOT_RETURN_NOT_OK(config.schema.AddField(field));
  PINOT_RETURN_NOT_OK(StoreTableConfig(config));
  // Servers default-fill the new column on their hosted segments within a
  // reload pass (section 5.2: "made available within a few minutes").
  ctx_.cluster->BroadcastUserMessage(config.server_tenant, "reload_table",
                                     physical_table);
  return Status::OK();
}

Status Controller::RequestInvertedIndex(const std::string& physical_table,
                                        const std::string& column) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  PINOT_ASSIGN_OR_RETURN(TableConfig config, GetTableConfig(physical_table));
  ctx_.cluster->BroadcastUserMessage(config.server_tenant,
                                     "create_inverted_index",
                                     physical_table + "\n" + column);
  return Status::OK();
}

int Controller::RunRetentionManager() {
  if (!IsLeader()) return 0;
  int removed = 0;
  for (const auto& physical : ListTables()) {
    auto config = GetTableConfig(physical);
    if (!config.ok() || config->retention_time_units < 0) continue;
    const int64_t now_units =
        ctx_.clock->NowMillis() / config->time_unit_millis;
    const int64_t cutoff = now_units - config->retention_time_units;
    for (const auto& path : ctx_.property_store->ListPrefix(
             zkpaths::SegmentMetadataPrefix(physical))) {
      auto encoded = ctx_.property_store->Get(path);
      if (!encoded.ok()) continue;
      auto meta = SegmentZkMetadata::Decode(*encoded);
      if (!meta.ok()) continue;
      if (meta->state != SegmentZkMetadata::State::kDone) continue;
      if (meta->max_time >= cutoff) continue;
      const std::string segment =
          path.substr(zkpaths::SegmentMetadataPrefix(physical).size());
      PINOT_LOG_INFO << "retention GC dropping " << physical << "/"
                     << segment;
      if (DeleteSegment(physical, segment).ok()) ++removed;
    }
  }
  return removed;
}

void Controller::ScheduleTask(Task task) {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.push_back(std::move(task));
}

void Controller::ScheduleUpsertCompaction(const std::string& physical_table,
                                          const std::string& segment,
                                          std::string payload) {
  Task task;
  task.type = "upsert_compact";
  task.physical_table = physical_table;
  task.segment = segment;
  task.payload = std::move(payload);
  ScheduleTask(std::move(task));
}

std::optional<Controller::Task> Controller::FetchTask() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return std::nullopt;
  Task task = std::move(tasks_.front());
  tasks_.pop_front();
  return task;
}

size_t Controller::PendingTaskCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

CompletionResponse Controller::SegmentConsumedUntil(
    const std::string& physical_table, const std::string& segment,
    const std::string& server, int64_t offset) {
  if (!IsLeader()) return {CompletionInstruction::kNotLeader, -1};
  auto config = GetTableConfig(physical_table);
  const int num_replicas = config.ok() ? config->num_replicas : 1;
  CompletionResponse response;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (completion_ == nullptr) return {CompletionInstruction::kNotLeader, -1};
    response = completion_->OnSegmentConsumed(segment, server, offset,
                                              num_replicas);
  }
  // One series per instruction: the FSM's transition mix (how often
  // replicas are held, caught up, or discarded) is an operability signal.
  metrics_
      ->GetCounter("completion_instructions_total",
                   {{"instruction",
                     CompletionInstructionToString(response.instruction)}})
      ->Increment();
  return response;
}

Status Controller::CommitSegment(const std::string& physical_table,
                                 const std::string& segment,
                                 const std::string& server, int64_t offset,
                                 const std::string& blob) {
  if (!IsLeader()) return Status::Unavailable("not the leader controller");
  SegmentCompletionManager* completion;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (completion_ == nullptr) {
      return Status::Unavailable("completion manager not initialized");
    }
    completion = completion_.get();
  }
  PINOT_RETURN_NOT_OK(completion->OnCommitStart(segment, server, offset));

  auto parsed = ImmutableSegment::DeserializeFromBlob(blob);
  if (!parsed.ok()) {
    completion->OnCommitFailure(segment);
    return parsed.status();
  }

  // Read the consuming-segment metadata for partition/sequence.
  auto encoded = ctx_.property_store->Get(
      zkpaths::SegmentMetadataPath(physical_table, segment));
  if (!encoded.ok()) {
    completion->OnCommitFailure(segment);
    return encoded.status();
  }
  auto meta = SegmentZkMetadata::Decode(*encoded);
  if (!meta.ok()) {
    completion->OnCommitFailure(segment);
    return meta.status();
  }

  ctx_.object_store->Put(zkpaths::SegmentBlobKey(physical_table, segment),
                         blob);
  meta->state = SegmentZkMetadata::State::kDone;
  meta->end_offset = offset;
  meta->min_time = (*parsed)->metadata().min_time;
  meta->max_time = (*parsed)->metadata().max_time;
  meta->crc = Crc32(blob);
  ctx_.property_store->Set(
      zkpaths::SegmentMetadataPath(physical_table, segment), meta->Encode());
  completion->OnCommitSuccess(segment, offset);
  metrics_
      ->GetCounter("completion_commits_total", {{"table", physical_table}})
      ->Increment();

  // Flip the committed segment's replicas to ONLINE...
  TableView ideal = ctx_.cluster->GetIdealState(physical_table);
  auto it = ideal.find(segment);
  std::vector<std::string> instances;
  if (it != ideal.end()) {
    InstanceStates online;
    for (const auto& [instance, state] : it->second) {
      online[instance] = SegmentState::kOnline;
      instances.push_back(instance);
    }
    ctx_.cluster->SetSegmentIdealState(physical_table, segment, online);
  }
  // ... and start the next consuming segment at the committed offset.
  auto config = GetTableConfig(physical_table);
  if (config.ok() && !instances.empty()) {
    PINOT_RETURN_NOT_OK(CreateConsumingSegment(
        *config, meta->partition, meta->sequence + 1, offset, instances));
  }
  return Status::OK();
}

}  // namespace pinot
