# Empty dependencies file for pinot.
# This may be replaced when dependencies are built.
