file(REMOVE_RECURSE
  "CMakeFiles/realtime_ingestion.dir/realtime_ingestion.cpp.o"
  "CMakeFiles/realtime_ingestion.dir/realtime_ingestion.cpp.o.d"
  "realtime_ingestion"
  "realtime_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
