#ifndef PINOT_REALTIME_MUTABLE_SEGMENT_H_
#define PINOT_REALTIME_MUTABLE_SEGMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "data/row.h"
#include "data/schema.h"
#include "segment/segment.h"
#include "segment/segment_builder.h"

namespace pinot {

/// An in-memory *consuming* segment fed from a stream partition (paper
/// sections 3.3.1, 3.3.6). Columns are dictionary-encoded with mutable
/// (arrival-order, hash-lookup) dictionaries and plain dict-id arrays, and
/// the segment is queryable while it grows. Sealing re-encodes the rows
/// into an ImmutableSegment with sorted dictionaries, bit packing, and the
/// table's configured indexes.
///
/// Thread safety: one writer (the stream consumer); concurrent readers must
/// be externally synchronized with the writer (the owning server serializes
/// index/query access to consuming segments).
class MutableSegment : public SegmentInterface {
 public:
  MutableSegment(Schema schema, std::string table_name,
                 std::string segment_name, Clock* clock);
  ~MutableSegment() override;

  /// Appends one event. Missing fields take schema defaults.
  Status Index(const Row& row);

  // SegmentInterface:
  const Schema& schema() const override { return schema_; }
  uint32_t num_docs() const override { return num_docs_; }
  const SegmentMetadata& metadata() const override { return metadata_; }
  const ColumnReader* GetColumn(const std::string& name) const override;

  /// Builds the immutable replacement for this segment using the table's
  /// segment-generation options (sort columns, inverted indexes,
  /// star-tree).
  Result<std::shared_ptr<ImmutableSegment>> Seal(
      const SegmentBuildConfig& config) const;

 private:
  class MutableColumn;

  Schema schema_;
  SegmentMetadata metadata_;
  Clock* clock_;
  std::vector<std::unique_ptr<MutableColumn>> columns_;
  std::vector<Row> rows_;  // Retained for sealing.
  uint32_t num_docs_ = 0;
};

}  // namespace pinot

#endif  // PINOT_REALTIME_MUTABLE_SEGMENT_H_
