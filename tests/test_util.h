#ifndef PINOT_TESTS_TEST_UTIL_H_
#define PINOT_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/row.h"
#include "data/schema.h"
#include "query/parser.h"
#include "query/result.h"
#include "query/table_executor.h"
#include "segment/segment.h"
#include "segment/segment_builder.h"

namespace pinot {
namespace test {

/// Schema used by most query tests: a small web-analytics-style table.
inline Schema AnalyticsSchema() {
  auto schema = Schema::Make({
      FieldSpec::Dimension("country", DataType::kString),
      FieldSpec::Dimension("browser", DataType::kString),
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Dimension("tags", DataType::kString, /*single_value=*/false),
      FieldSpec::Metric("impressions", DataType::kLong),
      FieldSpec::Metric("clicks", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return *schema;
}

struct AnalyticsRow {
  std::string country;
  std::string browser;
  int64_t member_id;
  std::vector<std::string> tags;
  int64_t impressions;
  int64_t clicks;
  int64_t day;
};

inline Row ToRow(const AnalyticsRow& r) {
  Row row;
  row.SetString("country", r.country)
      .SetString("browser", r.browser)
      .SetLong("memberId", r.member_id)
      .SetStringArray("tags", r.tags)
      .SetLong("impressions", r.impressions)
      .SetLong("clicks", r.clicks)
      .SetLong("day", r.day);
  return row;
}

/// A deterministic 12-row dataset exercised by most execution tests.
inline std::vector<AnalyticsRow> AnalyticsRows() {
  return {
      {"us", "firefox", 1, {"a", "b"}, 10, 1, 100},
      {"us", "chrome", 2, {"a"}, 20, 2, 100},
      {"ca", "firefox", 3, {}, 30, 0, 100},
      {"ca", "safari", 1, {"c"}, 40, 4, 101},
      {"us", "safari", 2, {"a", "c"}, 50, 5, 101},
      {"de", "chrome", 3, {"b"}, 60, 6, 101},
      {"de", "firefox", 4, {"b", "c"}, 70, 7, 102},
      {"us", "chrome", 4, {}, 80, 8, 102},
      {"fr", "safari", 5, {"a"}, 90, 9, 102},
      {"us", "firefox", 5, {"d"}, 100, 10, 103},
      {"ca", "chrome", 1, {"a", "d"}, 110, 11, 103},
      {"us", "firefox", 1, {"b"}, 120, 12, 103},
  };
}

inline std::shared_ptr<ImmutableSegment> BuildAnalyticsSegment(
    SegmentBuildConfig config = {},
    std::vector<AnalyticsRow> rows = AnalyticsRows()) {
  if (config.table_name.empty()) config.table_name = "analytics";
  if (config.segment_name.empty()) config.segment_name = "analytics_0";
  SegmentBuilder builder(AnalyticsSchema(), std::move(config));
  for (const auto& r : rows) {
    Status st = builder.AddRow(ToRow(r));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  auto segment = builder.Build();
  EXPECT_TRUE(segment.ok()) << segment.status().ToString();
  return *segment;
}

/// Parses and runs `pql` over the given segments, returning the final
/// (broker-reduced) result.
inline QueryResult RunPql(
    const std::vector<std::shared_ptr<SegmentInterface>>& segments,
    const std::string& pql) {
  auto query = ParsePql(pql);
  EXPECT_TRUE(query.ok()) << pql << ": " << query.status().ToString();
  PartialResult partial = ExecuteQueryOnSegments(segments, *query);
  return ReduceToFinalResult(*query, std::move(partial));
}

inline QueryResult RunPql(std::shared_ptr<ImmutableSegment> segment,
                          const std::string& pql) {
  return RunPql(
      std::vector<std::shared_ptr<SegmentInterface>>{std::move(segment)},
      pql);
}

}  // namespace test
}  // namespace pinot

#endif  // PINOT_TESTS_TEST_UTIL_H_
