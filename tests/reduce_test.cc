#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/result.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::BuildAnalyticsSegment;
using test::RunPql;

TEST(ReduceTest, TopNOrdersDescendingByFirstAggregation) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT sum(impressions), count(*) FROM analytics GROUP BY "
               "country TOP 4");
  ASSERT_EQ(result.group_rows.size(), 4u);
  double prev = 1e18;
  for (const auto& row : result.group_rows) {
    const double v = ValueToDouble(row.values[0]);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST(ReduceTest, TopNTruncates) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT count(*) FROM analytics GROUP BY memberId TOP 2");
  EXPECT_EQ(result.group_rows.size(), 2u);
  // TOP larger than group count returns all groups.
  result = RunPql(
      segment, "SELECT count(*) FROM analytics GROUP BY memberId TOP 50");
  EXPECT_EQ(result.group_rows.size(), 5u);
}

TEST(ReduceTest, SelectionLimitAppliedAfterMerge) {
  std::vector<std::shared_ptr<SegmentInterface>> segments = {
      BuildAnalyticsSegment(), BuildAnalyticsSegment()};
  auto result =
      RunPql(segments, "SELECT country FROM analytics LIMIT 5");
  EXPECT_EQ(result.selection_rows.size(), 5u);
}

TEST(ReduceTest, SelectionOrderByMultipleColumns) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(segment,
                       "SELECT country, impressions FROM analytics ORDER BY "
                       "country ASC, impressions DESC LIMIT 4");
  ASSERT_EQ(result.selection_rows.size(), 4u);
  // ca rows first (ascending country), ordered by impressions descending.
  EXPECT_EQ(std::get<std::string>(result.selection_rows[0][0]), "ca");
  EXPECT_EQ(std::get<int64_t>(result.selection_rows[0][1]), 110);
  EXPECT_EQ(std::get<std::string>(result.selection_rows[1][0]), "ca");
  EXPECT_EQ(std::get<int64_t>(result.selection_rows[1][1]), 40);
  EXPECT_EQ(std::get<std::string>(result.selection_rows[2][0]), "ca");
  EXPECT_EQ(std::get<int64_t>(result.selection_rows[2][1]), 30);
  EXPECT_EQ(std::get<std::string>(result.selection_rows[3][0]), "de");
}

TEST(ReduceTest, OrderByColumnNotInSelectionIsAnError) {
  // The sort can't run; silently trimming unsorted rows to LIMIT used to
  // return arbitrary rows as if they were the top-k.
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment,
      "SELECT country FROM analytics ORDER BY impressions DESC LIMIT 3");
  EXPECT_TRUE(result.partial);
  EXPECT_NE(result.error_message.find("ORDER BY column not in selection"),
            std::string::npos)
      << result.error_message;
  EXPECT_TRUE(result.selection_rows.empty());
}

TEST(ReduceTest, PartialFlagPropagates) {
  Query query = *ParsePql("SELECT count(*) FROM t");
  PartialResult partial;
  partial.status = Status::Timeout("server x");
  QueryResult result = ReduceToFinalResult(query, std::move(partial));
  EXPECT_TRUE(result.partial);
  EXPECT_NE(result.error_message.find("server x"), std::string::npos);
  // Aggregates still materialize (zero-valued) so clients can render.
  ASSERT_EQ(result.aggregates.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 0);
}

TEST(ReduceTest, AggregationNamesRendered) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT sum(clicks), distinctcount(memberId) FROM analytics");
  ASSERT_EQ(result.aggregation_names.size(), 2u);
  EXPECT_EQ(result.aggregation_names[0], "sum(clicks)");
  EXPECT_EQ(result.aggregation_names[1], "distinctcount(memberId)");
}

TEST(ReduceTest, ToStringIsHumanReadable) {
  auto segment = BuildAnalyticsSegment();
  auto result = RunPql(
      segment, "SELECT sum(impressions) FROM analytics GROUP BY country TOP 2");
  const std::string rendered = result.ToString();
  EXPECT_NE(rendered.find("country"), std::string::npos);
  EXPECT_NE(rendered.find("us"), std::string::npos);
  EXPECT_NE(rendered.find("sum(impressions)"), std::string::npos);
}

}  // namespace
}  // namespace pinot
