#ifndef PINOT_COMMON_RANDOM_H_
#define PINOT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pinot {

/// Seeded pseudo-random source. All randomness in the library (routing table
/// generation, workload generators) flows through this class so runs are
/// reproducible given a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound) {
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64InRange(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability `p`.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed integer generator over [0, n). Used by the workload
/// generators to model the long-tail dimension value distributions that the
/// paper's production datasets exhibit (section 4.3: "data sets which have a
/// long tail distribution").
///
/// Uses the rejection-inversion method of Hörmann & Derflinger so setup is
/// O(1) and sampling is O(1) expected, independent of n.
class ZipfGenerator {
 public:
  /// `n` values, skew `s` (typical: 0.8 - 1.2). `s` must be > 0 and != 1 is
  /// not required (s == 1 is handled).
  ZipfGenerator(uint64_t n, double s);

  /// Returns a value in [0, n); value 0 is the most frequent.
  uint64_t Next(Random& rng);

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double threshold_;
};

}  // namespace pinot

#endif  // PINOT_COMMON_RANDOM_H_
