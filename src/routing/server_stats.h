#ifndef PINOT_ROUTING_SERVER_STATS_H_
#define PINOT_ROUTING_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace pinot {

/// Live per-server load/latency estimate maintained by a broker ("Enhancing
/// OLAP Resilience at LinkedIn": steer scatter traffic away from slow hosts
/// *before* they fail, instead of retrying after a timeout).
///
/// One instance exists per (broker, server) pair; updates come from the
/// broker's own scatter-call observations, so each broker converges on its
/// own view of the cluster. All fields are relaxed atomics: readers (replica
/// picks) race writers (call completions) harmlessly — a slightly stale
/// score only costs pick quality, never safety.
class ServerStats {
 public:
  /// Exponentially-weighted moving average of observed call latency, in
  /// milliseconds. Returns `cold_latency_millis` until the first sample.
  double LatencyEwmaMillis() const {
    return ewma_millis_.load(std::memory_order_relaxed);
  }

  /// Calls currently outstanding against this server from this broker
  /// (including abandoned calls whose worker has not returned yet).
  int InFlight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// Completed-call samples folded into the EWMA so far.
  uint64_t Samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Replica-selection score: expected latency scaled by queueing pressure,
  /// EWMA × (1 + in-flight). Lower is better ("power of two choices" picks
  /// the lower-scored of two sampled replicas).
  double Score() const {
    return LatencyEwmaMillis() * (1.0 + static_cast<double>(InFlight()));
  }

 private:
  friend class ServerStatsRegistry;

  std::atomic<double> ewma_millis_{0};
  std::atomic<int> in_flight_{0};
  std::atomic<uint64_t> samples_{0};
};

/// Registry of per-server stats plus an aggregate latency histogram, owned
/// by each broker and fed from its scatter-call timings. Stable pointers,
/// same contract as MetricsRegistry: entries are never removed.
class ServerStatsRegistry {
 public:
  struct Options {
    // Weight of each new sample in the EWMA. 0.3 adapts within ~7 samples
    // while still smoothing per-call noise.
    double ewma_alpha = 0.3;
    // Latency assumed for a server with no samples yet. Slightly optimistic
    // so cold (new or recovered) servers attract their first probes.
    double cold_latency_millis = 0.5;
    // A failed call (unreachable / injected failure / broker-side abandon)
    // multiplies the EWMA instead of contributing a sample: the broker has
    // no latency number, only evidence that the server is misbehaving.
    double failure_penalty_factor = 2.0;
    // EWMA ceiling so a long outage doesn't need minutes of probes to
    // forgive (also bounds the failure-penalty geometric growth).
    double max_ewma_millis = 60000.0;
  };

  ServerStatsRegistry() : ServerStatsRegistry(Options()) {}
  explicit ServerStatsRegistry(Options options) : options_(options) {}

  /// Returns the stats entry for `server`, creating it cold on first use.
  ServerStats* Get(const std::string& server);
  /// Lookup without creation; null when the server was never observed.
  const ServerStats* Find(const std::string& server) const;

  /// Call lifecycle, invoked by the broker around each scatter call. Start
  /// increments in-flight; exactly one Finish per Start decrements it and
  /// folds the outcome in (a latency sample on success, a penalty on
  /// failure).
  void OnCallStart(const std::string& server);
  void OnCallFinish(const std::string& server, double latency_millis,
                    bool success);

  /// Broker-side failure evidence without a completed call: the server was
  /// unreachable at submit time, or the call was abandoned at a deadline
  /// while its worker is still running (the worker's own OnCallFinish will
  /// follow later with the true service time). Applies the failure penalty
  /// only — in-flight is untouched.
  void PenalizeFailure(const std::string& server);

  /// Selection score for `server`; the cold-server score when unknown.
  double ScoreOf(const std::string& server) const;

  /// Latency budget after which an outstanding call is worth hedging: the
  /// `percentile` of all observed call latencies, clamped to
  /// [floor_millis, cap_millis]. Until `min_samples` calls have completed
  /// the estimate is noise, so the cap is returned (hedging effectively
  /// off during warmup).
  double HedgeBudgetMillis(double percentile, double floor_millis,
                           double cap_millis, uint64_t min_samples) const;

  /// Aggregate latency distribution across all servers (feeds the hedge
  /// budget and the shed retry-after estimate).
  const Histogram* latency_histogram() const { return &latency_histogram_; }

  const Options& options() const { return options_; }

 private:
  void ObserveLatency(ServerStats* stats, double latency_millis);
  void Penalize(ServerStats* stats);

  const Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<ServerStats>> stats_;
  Histogram latency_histogram_;
};

}  // namespace pinot

#endif  // PINOT_ROUTING_SERVER_STATS_H_
