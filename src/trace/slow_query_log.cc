#include "trace/slow_query_log.h"

#include <algorithm>
#include <cstdio>

namespace pinot {

bool SlowQueryLog::Record(double latency_millis, const std::string& table,
                          const std::string& description,
                          const TraceSpan& root,
                          const std::string& rendered_receipt) {
  const bool slow = latency_millis >= options_.threshold_millis;
  if (!slow || options_.capacity == 0) return slow;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= options_.capacity &&
      latency_millis <= entries_.back().latency_millis) {
    return slow;
  }
  Entry entry;
  entry.latency_millis = latency_millis;
  entry.table = table;
  entry.description = description;
  entry.rendered_trace = root.ToString();
  entry.rendered_receipt = rendered_receipt;
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const Entry& a, const Entry& b) {
        return a.latency_millis > b.latency_millis;
      });
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > options_.capacity) entries_.pop_back();
  return slow;
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Worst(size_t top_n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (top_n == 0 || top_n >= entries_.size()) return entries_;
  return std::vector<Entry>(entries_.begin(),
                            entries_.begin() + static_cast<long>(top_n));
}

std::string SlowQueryLog::Dump(size_t top_n) const {
  const std::vector<Entry> worst = Worst(top_n);
  std::string out;
  if (worst.empty()) {
    out = "# slow query log: empty\n";
    return out;
  }
  char buf[128];
  size_t rank = 1;
  for (const auto& entry : worst) {
    // The description is unbounded (full rendered query): format only the
    // fixed-size prefix through the stack buffer so a long query cannot
    // truncate away the newline and corrupt the line-oriented grammar.
    std::snprintf(buf, sizeof(buf), "# slow query %zu: %.3fms  ", rank++,
                  entry.latency_millis);
    out.append(buf);
    out.append(entry.description);
    out.append("\n");
    if (!entry.table.empty()) {
      out.append("# table=");
      out.append(entry.table);
      out.append("\n");
    }
    // Receipt lines ride along comment-prefixed so dump consumers that parse
    // span lines skip them like any other annotation.
    if (!entry.rendered_receipt.empty()) {
      size_t start = 0;
      while (start < entry.rendered_receipt.size()) {
        size_t nl = entry.rendered_receipt.find('\n', start);
        if (nl == std::string::npos) nl = entry.rendered_receipt.size();
        out.append("# ");
        out.append(entry.rendered_receipt, start, nl - start);
        out.append("\n");
        start = nl + 1;
      }
    }
    out.append(entry.rendered_trace);
  }
  return out;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace pinot
