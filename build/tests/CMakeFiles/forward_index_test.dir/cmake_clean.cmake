file(REMOVE_RECURSE
  "CMakeFiles/forward_index_test.dir/forward_index_test.cc.o"
  "CMakeFiles/forward_index_test.dir/forward_index_test.cc.o.d"
  "forward_index_test"
  "forward_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forward_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
