// Figure 15: comparison of indexing techniques on the "Who viewed my
// profile" dataset — the physically sorted column against a roaring-bitmap
// inverted index on the same column (both inside Pinot). Per section 4.2,
// the sorted layout should scale to higher query rates because each query
// touches one contiguous range instead of performing bitmap operations.

#include "bench/bench_util.h"

namespace pinot {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  Workload workload = MakeWvmpWorkload(options.workload_options());
  std::vector<Query> queries = ParseQueries(workload);

  SegmentBuildConfig sorted_config;
  sorted_config.sort_columns = {"vieweeId"};

  SegmentBuildConfig inverted_config;
  inverted_config.inverted_index_columns = {"vieweeId"};

  struct Engine {
    std::string name;
    std::vector<std::shared_ptr<SegmentInterface>> segments;
  };
  std::vector<Engine> engines;
  engines.push_back({"pinot-sorted-column",
                     BuildSegments(workload, sorted_config,
                                   options.num_segments, "sorted")});
  engines.push_back({"pinot-inverted-index",
                     BuildSegments(workload, inverted_config,
                                   options.num_segments, "inverted")});

  std::printf("# dataset: %u rows, %d segments, %zu sampled queries\n",
              options.rows, options.num_segments, queries.size());
  PrintQpsHeader("Figure 15",
                 "sorted column vs inverted index on the WVMP dataset");

  for (const auto& engine : engines) {
    for (double qps : options.qps_sweep) {
      QpsPoint point = RunQpsPoint(
          [&](int i) {
            PartialResult partial =
                ExecuteQueryOnSegments(engine.segments, queries[i]);
            QueryResult result =
                ReduceToFinalResult(queries[i], std::move(partial));
            (void)result;
          },
          static_cast<int>(queries.size()), qps, options.client_threads,
          options.duration_ms);
      PrintQpsPoint(engine.name, point);
      if (point.avg_ms > 250) break;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pinot

int main(int argc, char** argv) { return pinot::bench::Main(argc, argv); }
