// Trace smoke driver for scripts/check_dumps.sh: stands up a hybrid table,
// runs TRACE / EXPLAIN queries plus one slow (delay-injected) query, and
// prints the rendered trace, the metrics dump, and the slow-query log
// between well-known markers so the script can validate each grammar.

#include <cstdio>

#include "cluster/pinot_cluster.h"
#include "segment/segment_builder.h"

using namespace pinot;

namespace {

Schema MetricsSchema() {
  auto schema = Schema::Make({
      FieldSpec::Dimension("page", DataType::kString),
      FieldSpec::Metric("views", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
  return *schema;
}

Row MakeRow(const char* page, int64_t views, int64_t day) {
  Row row;
  row.SetString("page", page).SetLong("views", views).SetLong("day", day);
  return row;
}

}  // namespace

int main() {
  PinotClusterOptions options;
  options.num_servers = 1;  // So the injected delay hits the queried server.
  options.broker_options.slow_query_threshold_millis = 10.0;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  StreamTopic* topic = cluster.streams()->GetOrCreateTopic("metrics", 1);

  TableConfig offline;
  offline.name = "metrics";
  offline.type = TableType::kOffline;
  offline.schema = MetricsSchema();
  if (!leader->AddTable(offline).ok()) return 1;

  SegmentBuildConfig config;
  config.table_name = "metrics_OFFLINE";
  config.segment_name = "daily";
  SegmentBuilder builder(MetricsSchema(), config);
  for (int day = 1; day <= 4; ++day) {
    if (!builder.AddRow(MakeRow("home", 100 + day, day)).ok()) return 1;
    if (!builder.AddRow(MakeRow("jobs", 40 + day, day)).ok()) return 1;
  }
  auto segment = builder.Build();
  if (!leader->UploadSegment("metrics_OFFLINE", (*segment)->SerializeToBlob())
           .ok()) {
    return 1;
  }

  TableConfig realtime;
  realtime.name = "metrics";
  realtime.type = TableType::kRealtime;
  realtime.schema = MetricsSchema();
  realtime.realtime.topic = "metrics";
  realtime.realtime.flush_threshold_rows = 100000;
  if (!leader->AddTable(realtime).ok()) return 1;
  topic->Produce("k", MakeRow("home", 150, 5));
  topic->Produce("k", MakeRow("jobs", 80, 5));
  cluster.ProcessRealtimeTicks(2);

  auto traced = cluster.Execute(
      "TRACE SELECT sum(views) FROM metrics WHERE page = 'home'");
  if (!traced.span.has_value()) {
    std::fprintf(stderr, "TRACE query returned no span\n");
    return 1;
  }
  std::printf("# --- trace dump ---\n%s", traced.span->ToString().c_str());

  auto explained = cluster.Execute("EXPLAIN SELECT count(*) FROM metrics");
  if (!explained.span.has_value() || !explained.explain_only) {
    std::fprintf(stderr, "EXPLAIN query returned no plan\n");
    return 1;
  }
  std::printf("# --- explain dump ---\n%s",
              explained.span->ToString().c_str());

  // Push one query over the slow threshold so the log has an entry.
  cluster.server(0)->InjectQueryDelay(1, 20);
  cluster.Execute("SELECT count(*) FROM metrics WHERE day >= 2");

  std::printf("# --- slow query log ---\n%s",
              cluster.SlowQueryLogDump().c_str());
  std::printf("# --- metrics dump ---\n%s", cluster.MetricsDump().c_str());
  std::printf("# --- end ---\n");
  return 0;
}
