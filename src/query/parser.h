#ifndef PINOT_QUERY_PARSER_H_
#define PINOT_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/query.h"

namespace pinot {

/// Parses a PQL statement into a Query. PQL grammar (paper section 3.1 —
/// a subset of SQL without joins, nested queries, DDL, or DML):
///
///   SELECT (agg(col) [, ...] | col [, ...] | *)
///   FROM table
///   [WHERE predicate]
///   [GROUP BY col [, ...]]
///   [TOP n]
///   [ORDER BY col [DESC|ASC] [, ...]]
///   [LIMIT n]
///
/// Predicates: =, !=, <>, <, <=, >, >=, BETWEEN x AND y, IN (...),
/// NOT IN (...), combined with AND / OR and parentheses. Literals are
/// integers, floating-point numbers, and single-quoted strings (with ''
/// as the quote escape).
Result<Query> ParsePql(std::string_view pql);

}  // namespace pinot

#endif  // PINOT_QUERY_PARSER_H_
