// Fault-injection tests for the broker's resilient scatter-gather: replica
// failover on injected failures, partitions, delays and drops; partial
// results with an execution trace when no replica is left; the
// corrupt-time-boundary fallback; and the tail-tolerance machinery
// (adaptive replica selection, hedged requests, load shedding).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/pinot_cluster.h"
#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;
using test::ToRow;

Schema KeyedSchema() {
  return *Schema::Make({
      FieldSpec::Dimension("memberId", DataType::kLong),
      FieldSpec::Metric("hits", DataType::kLong),
      FieldSpec::Time("day", DataType::kLong),
  });
}

// An offline table with `num_segments` x `rows_each` rows, replicated
// `replicas` times, behind a broker with a short deadline so timeout tests
// run fast.
void SetUpKeyedTable(PinotCluster& cluster, int replicas, int num_segments,
                     int rows_each) {
  Controller* leader = cluster.leader_controller();
  TableConfig config;
  config.name = "keyed";
  config.type = TableType::kOffline;
  config.schema = KeyedSchema();
  config.num_replicas = replicas;
  ASSERT_TRUE(leader->AddTable(config).ok());
  for (int s = 0; s < num_segments; ++s) {
    SegmentBuildConfig build;
    build.table_name = "keyed_OFFLINE";
    build.segment_name = "seg_" + std::to_string(s);
    SegmentBuilder builder(KeyedSchema(), build);
    for (int i = 0; i < rows_each; ++i) {
      Row row;
      row.SetLong("memberId", s * rows_each + i)
          .SetLong("hits", 1)
          .SetLong("day", 1);
      ASSERT_TRUE(builder.AddRow(row).ok());
    }
    auto segment = builder.Build();
    ASSERT_TRUE(segment.ok());
    ASSERT_TRUE(
        leader->UploadSegment("keyed_OFFLINE", (*segment)->SerializeToBlob())
            .ok());
  }
}

PinotClusterOptions FastBrokerOptions(int servers,
                                      int64_t timeout_millis = 1500) {
  PinotClusterOptions options;
  options.num_servers = servers;
  options.broker_options.default_timeout_millis = timeout_millis;
  return options;
}

int64_t Count(const QueryResult& result) {
  return std::get<int64_t>(result.aggregates[0]);
}

// Acceptance scenario: one replica of *every* queried segment dies
// mid-query (each server fails its first request), and the broker still
// returns a complete result by retrying on the surviving replicas.
TEST(BrokerResilienceTest, RetriesInjectedFailureOnAnotherReplica) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  for (int i = 0; i < cluster.num_servers(); ++i) {
    cluster.server(i)->InjectQueryFailures(1);
  }

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 30);
  // The first wave failed somewhere; retries made the result whole.
  EXPECT_GT(result.trace.retries, 0);
  bool saw_failure = false;
  for (const auto& event : result.trace.events) {
    if (event.outcome.rfind("failed:", 0) == 0) saw_failure = true;
  }
  EXPECT_TRUE(saw_failure) << result.trace.ToString();

  // Faults consumed: the next query is clean.
  result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial);
  EXPECT_EQ(Count(result), 30);
  EXPECT_EQ(result.trace.retries, 0);
}

// Every scatter event reports why each of its segments landed on that
// server: "routing-table" on the first wave, "failover(<prior outcome>,
// candidates=<n>)" on retry waves.
TEST(BrokerResilienceTest, ScatterEventsCarryReplicaPickReasons) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  for (int i = 0; i < cluster.num_servers(); ++i) {
    cluster.server(i)->InjectQueryFailures(1);
  }

  auto result = cluster.Execute("TRACE SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_GT(result.trace.retries, 0);

  bool saw_failover_reason = false;
  for (const auto& event : result.trace.events) {
    ASSERT_EQ(event.pick_reasons.size(), event.segments.size())
        << result.trace.ToString();
    for (const auto& reason : event.pick_reasons) {
      if (event.attempt == 0) {
        // The routing-table assignment, possibly overridden by adaptive
        // replica selection (scores can diverge once stats accumulate).
        EXPECT_TRUE(reason == "routing-table" ||
                    reason.rfind("adaptive(", 0) == 0)
            << reason << "\n" << result.trace.ToString();
      } else {
        EXPECT_EQ(reason.rfind("failover(", 0), 0u) << reason;
        EXPECT_NE(reason.find("candidates="), std::string::npos) << reason;
        saw_failover_reason = true;
      }
    }
  }
  EXPECT_TRUE(saw_failover_reason) << result.trace.ToString();
  // The failover reason names the prior outcome that triggered it.
  const std::string rendered = result.trace.ToString();
  EXPECT_NE(rendered.find("failover(failed:"), std::string::npos) << rendered;

  // The span tree mirrors the events: retry-wave call spans carry the wave
  // number and a per-segment pick label.
  ASSERT_TRUE(result.span.has_value());
  bool saw_retry_span = false;
  const TraceSpan* scatter = result.span->Find("scatter:keyed_OFFLINE");
  ASSERT_NE(scatter, nullptr) << result.span->ToString();
  for (const TraceSpan& call : scatter->children) {
    if (call.Annotation("wave", -1) > 0 &&
        call.LabelValue("outcome") == "ok") {
      saw_retry_span = true;
      // Per-segment pick labels, or one whole-call label when every
      // segment shares the same reason.
      bool has_pick_label = false;
      for (const auto& [key, value] : call.labels) {
        if (key == "pick" || key.rfind("pick:", 0) == 0) {
          EXPECT_EQ(value.rfind("failover(", 0), 0u) << value;
          has_pick_label = true;
        }
      }
      EXPECT_TRUE(has_pick_label) << result.span->ToString();
    }
  }
  EXPECT_TRUE(saw_retry_span) << result.span->ToString();
}

// A partitioned server stays in the external view (routing is NOT
// rebuilt), so the broker must detect unreachability at scatter time and
// fail over in-flight.
TEST(BrokerResilienceTest, FailsOverFromPartitionedServerMidQuery) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  ASSERT_EQ(Count(cluster.Execute("SELECT count(*) FROM keyed")), 30);

  cluster.PartitionServer(1);
  for (int i = 0; i < 5; ++i) {
    auto result = cluster.Execute("SELECT count(*) FROM keyed");
    ASSERT_FALSE(result.partial) << result.error_message;
    EXPECT_EQ(Count(result), 30);
  }
  cluster.HealServer(1);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial);
  EXPECT_EQ(Count(result), 30);
}

// A server that answers too slowly is abandoned at its attempt deadline
// and its segments are re-scattered to a faster replica, all within the
// original query deadline.
TEST(BrokerResilienceTest, TimedOutSegmentsRetryOnFastReplica) {
  PinotCluster cluster(FastBrokerOptions(3, /*timeout_millis=*/900));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  // Longer than the whole query deadline: without failover this query can
  // only be partial.
  cluster.server(0)->InjectQueryDelay(1, 1200);

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 30);
  EXPECT_GE(result.trace.timeouts, 1) << result.trace.ToString();
  EXPECT_LT(result.latency_millis, 900);
}

// Dropped calls (response withheld past the deadline) look identical to
// timeouts and take the same failover path.
TEST(BrokerResilienceTest, DroppedCallsFailOver) {
  PinotCluster cluster(FastBrokerOptions(3, /*timeout_millis=*/900));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  cluster.server(2)->SetQueryDropFraction(1.0);

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 30);
  EXPECT_GE(result.trace.timeouts, 1) << result.trace.ToString();

  cluster.server(2)->SetQueryDropFraction(0);
}

// When every replica of a segment is gone the result is partial, and the
// trace names the failed servers and the segments each covered.
TEST(BrokerResilienceTest, NoLiveReplicaYieldsPartialWithTrace) {
  PinotCluster cluster(FastBrokerOptions(2));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/3,
                  /*rows_each=*/5);
  ASSERT_EQ(Count(cluster.Execute("SELECT count(*) FROM keyed")), 15);

  cluster.PartitionServer(0);
  cluster.PartitionServer(1);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_TRUE(result.partial);
  EXPECT_NE(result.error_message.find("no live replica"), std::string::npos)
      << result.error_message;

  // Every failed scatter call is in the trace with its server and the
  // segments it covered.
  bool named_server = false;
  for (const auto& event : result.trace.events) {
    if (event.outcome == "unreachable" && !event.segments.empty() &&
        (event.server == "server-0" || event.server == "server-1")) {
      named_server = true;
    }
  }
  EXPECT_TRUE(named_server) << result.trace.ToString();

  cluster.HealServer(0);
  cluster.HealServer(1);
  result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 15);
}

// Exhausted retries (every wave fails) also end partial instead of
// spinning past the deadline.
TEST(BrokerResilienceTest, ExhaustedRetriesReportPartial) {
  PinotCluster cluster(FastBrokerOptions(2));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/3,
                  /*rows_each=*/5);
  // More injected failures than retry waves on both replicas.
  cluster.server(0)->InjectQueryFailures(10);
  cluster.server(1)->InjectQueryFailures(10);

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_TRUE(result.partial);
  EXPECT_FALSE(result.trace.events.empty());
}

// Satellite regression: a corrupt time-boundary property used to escape as
// an uncaught std::stoll exception and crash the broker. It must fall back
// to the unfiltered hybrid plan (both physical tables, no time filter).
TEST(BrokerResilienceTest, CorruptTimeBoundaryFallsBackToUnfilteredPlan) {
  PinotCluster cluster(FastBrokerOptions(3));
  Controller* leader = cluster.leader_controller();
  StreamTopic* topic =
      cluster.streams()->GetOrCreateTopic("analytics-events", 1);

  TableConfig offline;
  offline.name = "analytics";
  offline.type = TableType::kOffline;
  offline.schema = AnalyticsSchema();
  offline.num_replicas = 1;
  ASSERT_TRUE(leader->AddTable(offline).ok());
  {
    SegmentBuildConfig build;
    build.table_name = "analytics_OFFLINE";
    build.segment_name = "offline0";
    auto segment = BuildAnalyticsSegment(build);  // Days 100..103, 12 rows.
    ASSERT_TRUE(
        leader->UploadSegment("analytics_OFFLINE", segment->SerializeToBlob())
            .ok());
  }

  TableConfig realtime;
  realtime.name = "analytics";
  realtime.type = TableType::kRealtime;
  realtime.schema = AnalyticsSchema();
  realtime.num_replicas = 1;
  realtime.realtime.topic = "analytics-events";
  realtime.realtime.num_partitions = 1;
  realtime.realtime.flush_threshold_rows = 1000;
  ASSERT_TRUE(leader->AddTable(realtime).ok());
  // Realtime rows strictly after the boundary, so the unfiltered fallback
  // plan cannot double count any row.
  for (int64_t day : {104, 105}) {
    test::AnalyticsRow row{"us", "chrome", 9, {}, 1000, 7, day};
    topic->Produce("9", ToRow(row));
  }
  cluster.ProcessRealtimeTicks(2);

  // Healthy boundary (103, the max offline day): the hybrid rewrite asks
  // offline for day <= 102 and realtime for day >= 103, so the 3 offline
  // day-103 rows fall outside both sides: 9 offline + 2 realtime.
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 11);

  // Every corrupt value falls back to the unfiltered plan: all 12 offline
  // rows plus both realtime rows, with no crash and no partial flag.
  const std::string boundary_path = "/TIMEBOUNDARY/analytics";
  for (const std::string corrupt :
       {"garbage", "", "123abc", "99999999999999999999999", "  42"}) {
    cluster.property_store()->Set(boundary_path, corrupt);
    result = cluster.Execute("SELECT count(*) FROM analytics");
    ASSERT_FALSE(result.partial)
        << "boundary \"" << corrupt << "\": " << result.error_message;
    EXPECT_EQ(Count(result), 14) << "boundary \"" << corrupt << "\"";
  }

  // Restoring a sane boundary restores the filtered plan.
  cluster.property_store()->Set(boundary_path, "103");
  result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE day <= 102");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 9);
}

// The trace on a healthy query records per-server calls with latency and
// the segments queried.
TEST(BrokerResilienceTest, HealthyQueryCarriesTrace) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/6,
                  /*rows_each=*/5);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_FALSE(result.trace.events.empty());
  size_t segments_covered = 0;
  for (const auto& event : result.trace.events) {
    EXPECT_EQ(event.outcome, "ok");
    EXPECT_EQ(event.attempt, 0);
    segments_covered += event.segments.size();
  }
  EXPECT_EQ(segments_covered, 6u);
  EXPECT_EQ(result.trace.retries, 0);
  EXPECT_EQ(result.trace.timeouts, 0);
}

// The cluster-wide metrics dump reflects activity on every layer: broker
// query accounting, server execution counters, and the injected faults
// that drive scatter retries.
TEST(BrokerResilienceTest, MetricsDumpReflectsQueryAndFaultActivity) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/3, /*num_segments=*/6,
                  /*rows_each=*/5);
  MetricsRegistry* metrics = cluster.metrics();

  // Three clean queries; sum(hits) forces a real scan of every row.
  for (int i = 0; i < 3; ++i) {
    auto result = cluster.Execute("SELECT sum(hits) FROM keyed");
    ASSERT_FALSE(result.partial) << result.error_message;
  }
  EXPECT_EQ(metrics->CounterValue("broker_queries_total"), 3u);
  EXPECT_EQ(metrics->CounterValue("broker_scatter_retries_total"), 0u);
  EXPECT_EQ(metrics->CounterValue("broker_partial_results_total"), 0u);
  const Histogram* latency =
      metrics->FindHistogram("broker_query_latency_ms", {{"table", "keyed"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Count(), 3u);

  // Server-side: across all instances, each of the 3 queries covered all 6
  // segments exactly once and scanned all 30 rows.
  uint64_t server_queries = 0, segments_queried = 0, docs_scanned = 0;
  for (int i = 0; i < cluster.num_servers(); ++i) {
    const MetricLabels labels = {{"instance", cluster.server(i)->id()}};
    server_queries += metrics->CounterValue("server_queries_total", labels);
    segments_queried +=
        metrics->CounterValue("server_segments_queried_total", labels);
    docs_scanned +=
        metrics->CounterValue("server_docs_scanned_total", labels);
  }
  EXPECT_GE(server_queries, 3u);
  EXPECT_EQ(segments_queried, 3u * 6);
  EXPECT_EQ(docs_scanned, 3u * 30);

  // Inject one failure per server: the broker retries on other replicas
  // and both sides of that story land in the registry.
  for (int i = 0; i < cluster.num_servers(); ++i) {
    cluster.server(i)->InjectQueryFailures(1);
  }
  auto result = cluster.Execute("SELECT sum(hits) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  ASSERT_GT(result.trace.retries, 0);
  EXPECT_EQ(metrics->CounterValue("broker_scatter_retries_total"),
            static_cast<uint64_t>(result.trace.retries));
  uint64_t injected = 0;
  for (int i = 0; i < cluster.num_servers(); ++i) {
    injected += metrics->CounterValue(
        "server_injected_faults_total",
        {{"instance", cluster.server(i)->id()}, {"kind", "fail"}});
  }
  EXPECT_GT(injected, 0u);

  const std::string dump = cluster.MetricsDump();
  EXPECT_NE(dump.find("broker_queries_total 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("broker_query_latency_ms_count{table=\"keyed\"} 4"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("server_injected_faults_total"), std::string::npos);
}

// --- Tail tolerance: hedged requests -----------------------------------------

// Broker options with hedging warmed up quickly: after `hedge_min_samples`
// observed calls the budget becomes max(p95, floor).
PinotClusterOptions HedgingOptions(int servers, double floor_millis = 5.0,
                                   int64_t timeout_millis = 2000) {
  PinotClusterOptions options;
  options.num_servers = servers;
  options.broker_options.default_timeout_millis = timeout_millis;
  options.broker_options.hedge_min_samples = 8;
  options.broker_options.hedge_floor_millis = floor_millis;
  // Keep wave-0 picks on the routing table: under load, warmup timing noise
  // can otherwise steer every segment off the delayed server before the
  // injected delay is consumed, and no hedge ever fires.
  options.broker_options.adaptive_routing = false;
  return options;
}

// A call outstanding past the latency budget gets hedged onto another
// replica; the hedge's response is merged, the abandoned primary's never is.
TEST(BrokerHedgingTest, HedgeFiresPastBudgetAndWinnerMergesOnce) {
  PinotCluster cluster(HedgingOptions(2));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/6,
                  /*rows_each=*/5);
  // Warm the latency stats well past hedge_min_samples.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(Count(cluster.Execute("SELECT count(*) FROM keyed")), 30);
  }

  // One slow request: far beyond the ~5ms budget, far under the deadline.
  cluster.server(0)->InjectQueryDelay(1, 400);
  const auto start = std::chrono::steady_clock::now();
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  const double elapsed_millis =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count() /
      1000.0;

  ASSERT_FALSE(result.partial) << result.error_message;
  // Merged exactly once: a double-merged hedge race would double the count.
  EXPECT_EQ(Count(result), 30);
  EXPECT_GE(result.trace.hedges, 1) << result.trace.ToString();
  EXPECT_GE(result.trace.hedge_wins, 1) << result.trace.ToString();
  // The hedge raced the 400ms straggler and won near the budget.
  EXPECT_LT(elapsed_millis, 300) << result.trace.ToString();

  bool saw_winning_hedge = false;
  bool saw_abandoned_primary = false;
  for (const auto& event : result.trace.events) {
    if (event.hedge && event.hedge_won && event.outcome == "ok") {
      saw_winning_hedge = true;
    }
    if (!event.hedge && event.outcome == "abandoned (hedge won)") {
      saw_abandoned_primary = true;
    }
  }
  EXPECT_TRUE(saw_winning_hedge) << result.trace.ToString();
  EXPECT_TRUE(saw_abandoned_primary) << result.trace.ToString();
  EXPECT_GE(cluster.metrics()->CounterValue("broker_hedged_calls_total"), 1u);
  EXPECT_GE(cluster.metrics()->CounterValue("broker_hedge_wins_total"), 1u);
}

// Until enough samples accumulate the budget is the cap, so cold clusters
// never hedge — a slow-but-within-deadline call just gets waited on.
TEST(BrokerHedgingTest, NoHedgeDuringWarmup) {
  PinotCluster cluster(FastBrokerOptions(3));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/6,
                  /*rows_each=*/5);
  cluster.server(0)->InjectQueryDelay(1, 300);

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(Count(result), 30);
  EXPECT_EQ(result.trace.hedges, 0) << result.trace.ToString();
  EXPECT_EQ(result.trace.timeouts, 0) << result.trace.ToString();
}

// Fuzz the hedge race: across many delay placements, a query under hedging
// renders bit-identically to the clean baseline (same rows, same aggregate
// values, same scan statistics) — the losing side of a race never leaks
// into the merged result.
TEST(BrokerHedgingTest, HedgedResultsMatchBaselineUnderFuzz) {
  PinotCluster cluster(HedgingOptions(3, /*floor_millis=*/2.0));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/6,
                  /*rows_each=*/5);
  const std::string pql =
      "SELECT count(*), sum(hits) FROM keyed WHERE memberId >= 3";
  for (int i = 0; i < 10; ++i) {  // Warm past hedge_min_samples.
    ASSERT_FALSE(cluster.Execute(pql).partial);
  }
  const std::string baseline = cluster.Execute(pql).ToString();

  int total_hedges = 0;
  for (int i = 0; i < 12; ++i) {
    cluster.server(i % 3)->InjectQueryDelay(1, 20 + 15 * (i % 4));
    auto result = cluster.Execute(pql);
    ASSERT_FALSE(result.partial)
        << result.error_message << "\n" << result.trace.ToString();
    EXPECT_EQ(result.ToString(), baseline)
        << "iteration " << i << "\n" << result.trace.ToString();
    total_hedges += result.trace.hedges;
  }
  // Sanity: the fuzz actually exercised the hedge path.
  EXPECT_GT(total_hedges, 0);
}

// --- Tail tolerance: adaptive replica selection ------------------------------

// The EWMA steers wave-0 traffic away from a consistently slow server, and
// exploration probes pull the estimate back down once it recovers.
TEST(BrokerAdaptiveRoutingTest, SteersAwayFromSlowServerThenRecovers) {
  PinotClusterOptions options;
  options.num_servers = 2;
  options.broker_options.default_timeout_millis = 2000;
  options.broker_options.explore_probability = 0.2;
  options.broker_options.hedging_enabled = false;  // Isolate the steering.
  PinotCluster cluster(options);
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/6,
                  /*rows_each=*/5);
  ServerStatsRegistry* stats = cluster.broker(0)->server_stats();

  // Phase 1: server-0 answers every request 30ms slow. The broker's view of
  // it degrades and p2c moves its segments to server-1.
  cluster.server(0)->InjectQueryDelay(1000, 30);
  bool saw_p2c_move = false;
  for (int i = 0; i < 25; ++i) {
    auto result = cluster.Execute("SELECT count(*) FROM keyed");
    ASSERT_FALSE(result.partial) << result.error_message;
    ASSERT_EQ(Count(result), 30);
    for (const auto& event : result.trace.events) {
      for (const auto& reason : event.pick_reasons) {
        if (reason == "adaptive(p2c)" && event.server == "server-1") {
          saw_p2c_move = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_p2c_move);
  EXPECT_GT(stats->ScoreOf("server-0"), stats->ScoreOf("server-1") * 3)
      << "server-0=" << stats->ScoreOf("server-0")
      << " server-1=" << stats->ScoreOf("server-1");

  // Phase 2: server-0 recovers. Exploration keeps routing occasional probe
  // segments to it, and the fast samples forgive the EWMA geometrically.
  cluster.server(0)->InjectQueryDelay(0, 0);
  for (int i = 0; i < 60; ++i) {
    ASSERT_FALSE(cluster.Execute("SELECT count(*) FROM keyed").partial);
  }
  const ServerStats* recovered = stats->Find("server-0");
  ASSERT_NE(recovered, nullptr);
  EXPECT_LT(recovered->LatencyEwmaMillis(), 10.0);
}

// --- Tail tolerance: broker load shedding ------------------------------------

// Past the in-flight watermark the broker rejects immediately with an
// explicit throttled result carrying a retry-after estimate, and recovers
// as soon as capacity frees up.
TEST(BrokerLoadSheddingTest, OverloadedBrokerShedsWithRetryAfter) {
  PinotClusterOptions options;
  options.num_servers = 3;
  options.broker_options.default_timeout_millis = 2000;
  options.broker_options.max_inflight_queries = 1;
  PinotCluster cluster(options);
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/6,
                  /*rows_each=*/5);
  ASSERT_EQ(Count(cluster.Execute("SELECT count(*) FROM keyed")), 30);

  // Occupy the single in-flight slot with a deliberately slow query. Every
  // server is delayed (twice over, covering hedge calls) so the query is
  // slow regardless of where adaptive routing lands it.
  for (int s = 0; s < 3; ++s) cluster.server(s)->InjectQueryDelay(2, 400);
  std::thread occupant([&] {
    auto result = cluster.Execute("SELECT count(*) FROM keyed");
    EXPECT_FALSE(result.partial) << result.error_message;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto shed = cluster.Execute("SELECT count(*) FROM keyed");
  occupant.join();

  EXPECT_TRUE(shed.throttled);
  EXPECT_TRUE(shed.partial);
  EXPECT_GE(shed.retry_after_millis, 1.0);
  EXPECT_NE(shed.error_message.find("overloaded"), std::string::npos)
      << shed.error_message;
  // Shed before any scatter: no server work, no trace events.
  EXPECT_TRUE(shed.trace.events.empty());
  EXPECT_GE(cluster.metrics()->CounterValue("broker_shed_queries_total"), 1u);

  // Capacity is back: the next query is served normally.
  auto after = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_FALSE(after.throttled);
  ASSERT_FALSE(after.partial) << after.error_message;
  EXPECT_EQ(Count(after), 30);
}

// --- Satellite: server-side admission deadline -------------------------------

// A request whose deadline expired while it waited (here: behind an
// injected delay) is answered with a timeout instead of executing — the
// broker abandoned it long ago, so executing would be pure waste.
TEST(BrokerResilienceTest, ExpiredDeadlineSkipsServerExecution) {
  PinotCluster cluster(FastBrokerOptions(1, /*timeout_millis=*/300));
  SetUpKeyedTable(cluster, /*replicas=*/1, /*num_segments=*/3,
                  /*rows_each=*/5);
  ASSERT_EQ(Count(cluster.Execute("SELECT count(*) FROM keyed")), 15);
  MetricsRegistry* metrics = cluster.metrics();
  const MetricLabels labels = {{"instance", "server-0"}};
  const uint64_t executed_before =
      metrics->CounterValue("server_queries_total", labels);

  // The only replica sleeps past the whole query deadline.
  cluster.server(0)->InjectQueryDelay(1, 500);
  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_TRUE(result.partial);

  // Let the abandoned worker finish its sleep and hit the deadline check.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_GE(metrics->CounterValue("server_deadline_exceeded_total", labels),
            1u);
  EXPECT_EQ(metrics->CounterValue("server_queries_total", labels),
            executed_before)
      << "expired request must not execute";
}

// --- Satellite: zero-budget waves never scatter ------------------------------

// With no deadline budget at all, the broker reports the segments as timed
// out instead of scattering calls that cannot possibly answer in time.
TEST(BrokerResilienceTest, ZeroBudgetWaveNeverScatters) {
  PinotCluster cluster(FastBrokerOptions(2, /*timeout_millis=*/0));
  SetUpKeyedTable(cluster, /*replicas=*/2, /*num_segments=*/3,
                  /*rows_each=*/5);
  MetricsRegistry* metrics = cluster.metrics();

  auto result = cluster.Execute("SELECT count(*) FROM keyed");
  EXPECT_TRUE(result.partial);
  EXPECT_NE(result.error_message.find("deadline exhausted"),
            std::string::npos)
      << result.error_message;
  ASSERT_FALSE(result.trace.events.empty());
  for (const auto& event : result.trace.events) {
    EXPECT_EQ(event.outcome, "timeout (deadline exhausted)");
  }
  // No server ever saw the query.
  for (int i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(metrics->CounterValue("server_queries_total",
                                    {{"instance", cluster.server(i)->id()}}),
              0u);
  }
}

}  // namespace
}  // namespace pinot
