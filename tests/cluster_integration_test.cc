#include "cluster/pinot_cluster.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pinot {
namespace {

using test::AnalyticsRows;
using test::AnalyticsSchema;
using test::BuildAnalyticsSegment;

TableConfig OfflineAnalyticsConfig(int replicas = 2) {
  TableConfig config;
  config.name = "analytics";
  config.type = TableType::kOffline;
  config.schema = AnalyticsSchema();
  config.num_replicas = replicas;
  return config;
}

std::string BuildSegmentBlob(const std::string& name,
                             SegmentBuildConfig config = {}) {
  config.segment_name = name;
  config.table_name = "analytics_OFFLINE";
  auto segment = BuildAnalyticsSegment(std::move(config));
  return segment->SerializeToBlob();
}

TEST(ClusterIntegrationTest, UploadAndQueryOfflineTable) {
  PinotClusterOptions options;
  options.num_servers = 3;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_NE(leader, nullptr);
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig()).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());

  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);

  result = cluster.Execute(
      "SELECT sum(impressions) FROM analytics WHERE country = 'us'");
  EXPECT_DOUBLE_EQ(std::get<double>(result.aggregates[0]), 380);
}

TEST(ClusterIntegrationTest, SegmentIsReplicated) {
  PinotClusterOptions options;
  options.num_servers = 3;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(2)).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());
  int hosts = 0;
  for (int i = 0; i < cluster.num_servers(); ++i) {
    hosts += cluster.server(i)->HostedSegments("analytics_OFFLINE").size();
  }
  EXPECT_EQ(hosts, 2);
  const TableView view =
      cluster.cluster_manager()->GetExternalView("analytics_OFFLINE");
  EXPECT_EQ(view.at("seg0").size(), 2u);
}

TEST(ClusterIntegrationTest, MultipleSegmentsSpreadAcrossServers) {
  PinotClusterOptions options;
  options.num_servers = 3;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(1)).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(leader
                    ->UploadSegment("analytics_OFFLINE",
                                    BuildSegmentBlob("seg" + std::to_string(i)))
                    .ok());
  }
  // Least-loaded assignment: each of the 3 servers gets 2 segments.
  for (int i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server(i)->HostedSegments("analytics_OFFLINE").size(),
              2u);
  }
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 72);
}

TEST(ClusterIntegrationTest, ServerFailureDegradesGracefully) {
  PinotClusterOptions options;
  options.num_servers = 2;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(2)).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());

  // With 2 replicas, killing one server leaves the other serving.
  cluster.KillServer(0);
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);

  // Killing both: the query comes back partial, not crashed.
  cluster.KillServer(1);
  result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(result.total_docs, 0);

  // Revival replays segments from the object store (stateless servers).
  cluster.ReviveServer(0);
  result = cluster.Execute("SELECT count(*) FROM analytics");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);
}

TEST(ClusterIntegrationTest, ControllerFailover) {
  PinotClusterOptions options;
  options.num_controllers = 3;
  options.num_servers = 2;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_EQ(leader->id(), "controller-0");
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(1)).ok());

  // Non-leaders refuse admin operations.
  EXPECT_FALSE(cluster.controller(1)
                   ->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("x"))
                   .ok());

  cluster.KillController(0);
  Controller* new_leader = cluster.leader_controller();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_EQ(new_leader->id(), "controller-1");
  EXPECT_TRUE(
      new_leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);
}

TEST(ClusterIntegrationTest, SegmentReplaceIsAtomic) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(1)).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());

  // Replace the segment with one holding only three rows.
  SegmentBuildConfig config;
  config.segment_name = "seg0";
  config.table_name = "analytics_OFFLINE";
  auto rows = AnalyticsRows();
  rows.resize(3);
  auto replacement = BuildAnalyticsSegment(config, rows);
  ASSERT_TRUE(leader
                  ->UploadSegment("analytics_OFFLINE",
                                  replacement->SerializeToBlob())
                  .ok());
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 3);
}

TEST(ClusterIntegrationTest, QuotaRejectsOversizedTable) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  TableConfig config = OfflineAnalyticsConfig(1);
  const std::string blob = BuildSegmentBlob("seg0");
  config.quota_bytes = static_cast<int64_t>(blob.size() + 100);
  ASSERT_TRUE(leader->AddTable(config).ok());
  ASSERT_TRUE(leader->UploadSegment("analytics_OFFLINE", blob).ok());
  // Second segment exceeds the quota.
  Status st =
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg1"));
  EXPECT_TRUE(st.IsQuotaExceeded()) << st.ToString();
  // Replacing the existing segment stays within quota.
  EXPECT_TRUE(leader->UploadSegment("analytics_OFFLINE", blob).ok());
}

TEST(ClusterIntegrationTest, UploadRejectsCorruptBlob) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(1)).ok());
  std::string blob = BuildSegmentBlob("seg0");
  blob[blob.size() / 2] ^= 0x77;
  Status st = leader->UploadSegment("analytics_OFFLINE", blob);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(ClusterIntegrationTest, LiveSchemaAddition) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(1)).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());

  FieldSpec platform = FieldSpec::Dimension("platform", DataType::kString);
  platform.default_value = std::string("web");
  ASSERT_TRUE(leader->AddColumn("analytics_OFFLINE", platform).ok());

  // The new column is immediately queryable with its default value.
  auto result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE platform = 'web'");
  ASSERT_FALSE(result.partial) << result.error_message;
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 12);
  result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE platform = 'mobile'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 0);
}

TEST(ClusterIntegrationTest, OnDemandInvertedIndexViaController) {
  PinotCluster cluster(PinotClusterOptions{});
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(1)).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());
  ASSERT_TRUE(
      leader->RequestInvertedIndex("analytics_OFFLINE", "browser").ok());
  // Query results are unchanged (index is a pure optimization).
  auto result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE browser = 'firefox'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 5);
}

TEST(ClusterIntegrationTest, RetentionGarbageCollection) {
  SimulatedClock clock(0);
  PinotClusterOptions options;
  options.clock = &clock;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();

  TableConfig config = OfflineAnalyticsConfig(1);
  config.retention_time_units = 10;  // Keep 10 days.
  config.time_unit_millis = 86400000;
  ASSERT_TRUE(leader->AddTable(config).ok());
  // Data days are 100..103 (from the fixture).
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());

  // Day 105: still within retention.
  clock.SetMillis(105LL * 86400000);
  EXPECT_EQ(leader->RunRetentionManager(), 0);
  // Day 120: segment (max day 103) is past 120 - 10 = 110.
  clock.SetMillis(120LL * 86400000);
  EXPECT_EQ(leader->RunRetentionManager(), 1);
  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(result.total_docs, 0);
}

TEST(ClusterIntegrationTest, MinionPurgeTask) {
  PinotClusterOptions options;
  options.num_minions = 1;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();
  ASSERT_TRUE(leader->AddTable(OfflineAnalyticsConfig(1)).ok());
  SegmentBuildConfig build;
  build.inverted_index_columns = {"browser"};
  ASSERT_TRUE(leader
                  ->UploadSegment("analytics_OFFLINE",
                                  BuildSegmentBlob("seg0", build))
                  .ok());

  // Purge member 1 (GDPR-style request; 4 rows in the fixture).
  leader->ScheduleTask({.type = "purge",
                        .physical_table = "analytics_OFFLINE",
                        .segment = "seg0",
                        .payload = EncodePurgePayload("memberId", "1")});
  EXPECT_EQ(cluster.minion(0)->ProcessTasks(), 1);

  auto result = cluster.Execute("SELECT count(*) FROM analytics");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 8);
  result =
      cluster.Execute("SELECT count(*) FROM analytics WHERE memberId = 1");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 0);
  // The rewritten segment kept its inverted index.
  result = cluster.Execute(
      "SELECT count(*) FROM analytics WHERE browser = 'firefox'");
  EXPECT_EQ(std::get<int64_t>(result.aggregates[0]), 3);
}

TEST(ClusterIntegrationTest, UnknownTableIsPartial) {
  PinotCluster cluster(PinotClusterOptions{});
  auto result = cluster.Execute("SELECT count(*) FROM nope");
  EXPECT_TRUE(result.partial);
}

TEST(ClusterIntegrationTest, TenantIsolation) {
  PinotClusterOptions options;
  options.num_servers = 4;
  PinotCluster cluster(options);
  Controller* leader = cluster.leader_controller();

  // Re-register two servers under a dedicated tenant tag.
  cluster.cluster_manager()->RegisterInstance(
      cluster.server(2)->id(), {"server", "goldTenant"}, cluster.server(2));
  cluster.cluster_manager()->RegisterInstance(
      cluster.server(3)->id(), {"server", "goldTenant"}, cluster.server(3));

  TableConfig config = OfflineAnalyticsConfig(2);
  config.server_tenant = "goldTenant";
  ASSERT_TRUE(leader->AddTable(config).ok());
  ASSERT_TRUE(
      leader->UploadSegment("analytics_OFFLINE", BuildSegmentBlob("seg0"))
          .ok());
  // Only the gold-tenant servers host the segment.
  EXPECT_TRUE(cluster.server(0)->HostedSegments("analytics_OFFLINE").empty());
  EXPECT_TRUE(cluster.server(1)->HostedSegments("analytics_OFFLINE").empty());
  EXPECT_EQ(cluster.server(2)->HostedSegments("analytics_OFFLINE").size(), 1u);
  EXPECT_EQ(cluster.server(3)->HostedSegments("analytics_OFFLINE").size(), 1u);
}

}  // namespace
}  // namespace pinot
