#ifndef PINOT_SEGMENT_ROW_EXTRACT_H_
#define PINOT_SEGMENT_ROW_EXTRACT_H_

#include "data/row.h"
#include "segment/segment.h"

namespace pinot {

/// Reconstructs document `doc` of `segment` as an ingestion Row (full
/// dictionary decode). Used by maintenance tasks that rewrite segments,
/// e.g. the minion purge job (paper section 3.2: "download segments,
/// expunge the unwanted records, rewrite and reindex the segments").
Row ExtractRow(const SegmentInterface& segment, uint32_t doc);

}  // namespace pinot

#endif  // PINOT_SEGMENT_ROW_EXTRACT_H_
