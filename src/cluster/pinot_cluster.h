#ifndef PINOT_CLUSTER_PINOT_CLUSTER_H_
#define PINOT_CLUSTER_PINOT_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/broker.h"
#include "cluster/cluster_context.h"
#include "cluster/cluster_manager.h"
#include "cluster/controller.h"
#include "cluster/health.h"
#include "cluster/minion.h"
#include "cluster/object_store.h"
#include "cluster/property_store.h"
#include "cluster/server.h"
#include "common/clock.h"
#include "metrics/metrics.h"
#include "metrics/snapshot.h"
#include "stream/stream.h"

namespace pinot {

/// Wiring options for an in-process Pinot cluster.
struct PinotClusterOptions {
  int num_controllers = 1;  // Paper runs three with a single master.
  int num_servers = 3;
  int num_brokers = 1;
  int num_minions = 0;
  Controller::Options controller_options;
  Server::Options server_options;
  Broker::Options broker_options;
  /// SLO budgets the health evaluator grades every table against.
  SloThresholds slo;
  /// Time source; null uses the process-wide real clock. Tests inject a
  /// SimulatedClock to drive retention, flush thresholds and the
  /// completion-protocol timeouts deterministically.
  Clock* clock = nullptr;
};

/// An entire Pinot deployment in one process: Zookeeper-sim, object store,
/// stream registry, controllers (with leader election), servers, brokers,
/// and minions — wired through in-process endpoints. This is the facade
/// examples, integration tests, and the QPS benches build on.
class PinotCluster {
 public:
  explicit PinotCluster(PinotClusterOptions options = PinotClusterOptions());
  ~PinotCluster();

  PinotCluster(const PinotCluster&) = delete;
  PinotCluster& operator=(const PinotCluster&) = delete;

  // --- Component access -------------------------------------------------------

  ClusterContext& ctx() { return ctx_; }
  ClusterManager* cluster_manager() { return &cluster_; }
  PropertyStore* property_store() { return &property_store_; }
  ObjectStore* object_store() { return &object_store_; }
  StreamRegistry* streams() { return &streams_; }
  Clock* clock() { return ctx_.clock; }
  MetricsRegistry* metrics() { return &metrics_; }

  int num_controllers() const { return static_cast<int>(controllers_.size()); }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  int num_brokers() const { return static_cast<int>(brokers_.size()); }
  Controller* controller(int i) { return controllers_[i].get(); }
  Server* server(int i) { return servers_[i].get(); }
  Broker* broker(int i) { return brokers_[i].get(); }
  Minion* minion(int i) { return minions_[i].get(); }

  /// The current leader controller (null during failover gaps).
  Controller* leader_controller();

  // --- Convenience ------------------------------------------------------------

  /// Runs a PQL query through broker 0.
  QueryResult Execute(const std::string& pql);

  /// Prometheus-style snapshot of every metric the cluster's components
  /// (brokers, servers, controllers, tenants, realtime consumers) recorded.
  std::string MetricsDump() const { return metrics_.Dump(); }

  /// Rendered worst-first slow-query traces across every broker, dumpable
  /// next to MetricsDump().
  std::string SlowQueryLogDump(size_t top_n = 0) const {
    std::string out;
    for (const auto& broker : brokers_) {
      out += broker->SlowQueryLogDump(top_n);
    }
    return out;
  }

  /// Appends a point-in-time snapshot of every metric series to the
  /// cluster's snapshot ring and returns it. Call periodically (benches do
  /// it per sweep point) so EvaluateHealth() grades windowed rates instead
  /// of lifetime totals.
  MetricsSnapshot TakeMetricsSnapshot() { return snapshots_.Take(metrics_); }

  /// The snapshot history backing windowed rates.
  SnapshotRing* snapshots() { return &snapshots_; }

  /// Grades every table against the configured SLO budgets, using the
  /// latest snapshot window when at least two snapshots were taken.
  HealthReport EvaluateHealth() const;

  /// EvaluateHealth() rendered for dumps and bench exits.
  std::string HealthDump() const { return EvaluateHealth().ToString(); }

  /// Ticks realtime consumption on every server `rounds` times; returns
  /// total rows indexed.
  int ProcessRealtimeTicks(int rounds = 1);

  /// Drives realtime consumption until all servers report no progress and
  /// no consuming segment is mid-completion (bounded by `max_rounds`).
  void DrainRealtime(int max_rounds = 1000);

  // --- Failure injection --------------------------------------------------------

  void KillServer(int i);
  void ReviveServer(int i);
  void KillController(int i);
  void ReviveController(int i);

  /// Network-partitions a server: it stays in every external view (brokers
  /// keep routing to it) but scatter calls to it fail, forcing the broker's
  /// in-flight replica failover. Per-request fail/delay/drop injection
  /// lives on Server itself (`server(i)->InjectQueryFailures(...)` etc).
  void PartitionServer(int i);
  void HealServer(int i);

 private:
  ClusterManager cluster_;
  PropertyStore property_store_;
  ObjectStore object_store_;
  StreamRegistry streams_;
  MetricsRegistry metrics_;
  SnapshotRing snapshots_;
  SloThresholds slo_;
  ClusterContext ctx_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<std::unique_ptr<Minion>> minions_;
};

}  // namespace pinot

#endif  // PINOT_CLUSTER_PINOT_CLUSTER_H_
