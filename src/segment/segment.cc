#include "segment/segment.h"

#include "common/hash.h"
#include "startree/star_tree.h"

namespace pinot {

namespace {
constexpr uint32_t kSegmentMagic = 0x50534547;  // "PSEG"
constexpr uint32_t kSegmentVersion = 1;
}  // namespace

uint64_t ImmutableSegment::Column::SizeInBytes() const {
  uint64_t total = dictionary_.SizeInBytes() + forward_.SizeInBytes();
  if (inverted_ != nullptr) total += inverted_->SizeInBytes();
  if (sorted_ != nullptr) total += sorted_->SizeInBytes();
  return total;
}

ImmutableSegment::ImmutableSegment(
    Schema schema, SegmentMetadata metadata,
    std::vector<std::unique_ptr<Column>> columns)
    : schema_(std::move(schema)),
      metadata_(std::move(metadata)),
      columns_(std::move(columns)) {
  for (int i = 0; i < static_cast<int>(columns_.size()); ++i) {
    column_index_[columns_[i]->spec().name] = i;
  }
}

ImmutableSegment::~ImmutableSegment() = default;

const ColumnReader* ImmutableSegment::GetColumn(
    const std::string& name) const {
  auto it = column_index_.find(name);
  return it == column_index_.end() ? nullptr : columns_[it->second].get();
}

ImmutableSegment::Column* ImmutableSegment::GetMutableColumn(
    const std::string& name) {
  auto it = column_index_.find(name);
  return it == column_index_.end() ? nullptr : columns_[it->second].get();
}

const StarTree* ImmutableSegment::star_tree() const {
  return star_tree_.get();
}

void ImmutableSegment::SetStarTree(std::unique_ptr<StarTree> tree) {
  star_tree_ = std::move(tree);
}

Status ImmutableSegment::CreateInvertedIndex(const std::string& column) {
  Column* col = GetMutableColumn(column);
  if (col == nullptr) {
    return Status::NotFound("no such column: " + column);
  }
  if (col->inverted_index() != nullptr) return Status::OK();
  auto index = std::make_unique<InvertedIndex>(
      InvertedIndex::BuildFromForwardIndex(col->forward_index(),
                                           col->dictionary().size()));
  col->SetInvertedIndex(std::move(index));
  return Status::OK();
}

Status ImmutableSegment::AddDefaultColumn(const FieldSpec& field) {
  if (column_index_.count(field.name) > 0) {
    return Status::AlreadyExists("column already exists: " + field.name);
  }
  if (!schema_.HasField(field.name)) {
    PINOT_RETURN_NOT_OK(schema_.AddField(field));
  }
  const Value default_value =
      schema_.EffectiveDefault(schema_.IndexOf(field.name));

  // Dictionary with a single entry; the forward index then packs zero bits
  // per document. Multi-value columns default to a one-element array of the
  // scalar zero value.
  Dictionary dictionary = [&] {
    switch (Dictionary::StorageFor(field.type)) {
      case Dictionary::Storage::kInt64: {
        int64_t v = 0;
        if (const auto* i = std::get_if<int64_t>(&default_value)) v = *i;
        return Dictionary::BuildSortedInt64({v});
      }
      case Dictionary::Storage::kDouble: {
        double v = 0.0;
        if (const auto* d = std::get_if<double>(&default_value)) v = *d;
        return Dictionary::BuildSortedDouble({v});
      }
      case Dictionary::Storage::kString: {
        std::string s;
        if (const auto* str = std::get_if<std::string>(&default_value)) {
          s = *str;
        }
        return Dictionary::BuildSortedString({std::move(s)});
      }
    }
    return Dictionary::BuildSortedInt64({0});
  }();

  ColumnStats stats;
  stats.cardinality = 1;
  stats.min_value = dictionary.ValueAt(0);
  stats.max_value = dictionary.ValueAt(0);
  stats.is_sorted = true;
  stats.total_entries = metadata_.num_docs;

  ForwardIndex forward;
  if (field.single_value) {
    forward = ForwardIndex::BuildSingle(
        std::vector<uint32_t>(metadata_.num_docs, 0), 1);
  } else {
    forward = ForwardIndex::BuildMulti(
        std::vector<std::vector<uint32_t>>(metadata_.num_docs, {0}), 1);
  }

  auto column = std::make_unique<Column>(field, std::move(dictionary),
                                         std::move(forward), stats);
  column_index_[field.name] = static_cast<int>(columns_.size());
  columns_.push_back(std::move(column));
  return Status::OK();
}

uint64_t ImmutableSegment::SizeInBytes() const {
  uint64_t total = 0;
  for (const auto& column : columns_) total += column->SizeInBytes();
  if (star_tree_ != nullptr) total += star_tree_->SizeInBytes();
  return total;
}

std::string ImmutableSegment::SerializeToBlob() const {
  // Body: schema + metadata + columns + star tree.
  ByteWriter body;
  schema_.Serialize(&body);

  body.WriteString(metadata_.table_name);
  body.WriteString(metadata_.segment_name);
  body.WriteU32(metadata_.num_docs);
  body.WriteI64(metadata_.min_time);
  body.WriteI64(metadata_.max_time);
  body.WriteI64(metadata_.creation_time_millis);
  body.WriteString(metadata_.sorted_column);
  body.WriteI32(metadata_.partition_id);
  body.WriteString(metadata_.partition_column);
  body.WriteI32(metadata_.num_partitions);

  body.WriteU32(static_cast<uint32_t>(columns_.size()));
  for (const auto& column : columns_) {
    body.WriteString(column->spec().name);
    column->dictionary().Serialize(&body);
    column->forward_index().Serialize(&body);
    const ColumnStats& stats = column->stats();
    body.WriteI32(stats.cardinality);
    WriteValue(stats.min_value, &body);
    WriteValue(stats.max_value, &body);
    body.WriteU8(stats.is_sorted ? 1 : 0);
    body.WriteU32(stats.total_entries);
    body.WriteU32(stats.max_entries_per_row);
    body.WriteU8(column->inverted_index() != nullptr ? 1 : 0);
    if (column->inverted_index() != nullptr) {
      column->inverted_index()->Serialize(&body);
    }
    body.WriteU8(column->sorted_index() != nullptr ? 1 : 0);
    if (column->sorted_index() != nullptr) {
      column->sorted_index()->Serialize(&body);
    }
  }

  body.WriteU8(star_tree_ != nullptr ? 1 : 0);
  if (star_tree_ != nullptr) star_tree_->Serialize(&body);

  // Envelope: magic, version, crc, body.
  ByteWriter envelope;
  envelope.WriteU32(kSegmentMagic);
  envelope.WriteU32(kSegmentVersion);
  envelope.WriteU32(Crc32(body.buffer()));
  envelope.WriteRaw(body.buffer().data(), body.size());
  return std::move(envelope.TakeBuffer());
}

Result<std::shared_ptr<ImmutableSegment>> ImmutableSegment::
    DeserializeFromBlob(std::string_view blob) {
  ByteReader reader(blob);
  PINOT_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kSegmentMagic) return Status::Corruption("bad segment magic");
  PINOT_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kSegmentVersion) {
    return Status::Corruption("unsupported segment version");
  }
  PINOT_ASSIGN_OR_RETURN(uint32_t crc, reader.ReadU32());
  const std::string_view body = blob.substr(reader.position());
  if (Crc32(body) != crc) {
    return Status::Corruption("segment crc mismatch");
  }

  PINOT_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(&reader));

  SegmentMetadata metadata;
  PINOT_ASSIGN_OR_RETURN(metadata.table_name, reader.ReadString());
  PINOT_ASSIGN_OR_RETURN(metadata.segment_name, reader.ReadString());
  PINOT_ASSIGN_OR_RETURN(metadata.num_docs, reader.ReadU32());
  PINOT_ASSIGN_OR_RETURN(metadata.min_time, reader.ReadI64());
  PINOT_ASSIGN_OR_RETURN(metadata.max_time, reader.ReadI64());
  PINOT_ASSIGN_OR_RETURN(metadata.creation_time_millis, reader.ReadI64());
  PINOT_ASSIGN_OR_RETURN(metadata.sorted_column, reader.ReadString());
  PINOT_ASSIGN_OR_RETURN(metadata.partition_id, reader.ReadI32());
  PINOT_ASSIGN_OR_RETURN(metadata.partition_column, reader.ReadString());
  PINOT_ASSIGN_OR_RETURN(metadata.num_partitions, reader.ReadI32());
  metadata.crc = crc;

  PINOT_ASSIGN_OR_RETURN(uint32_t num_columns, reader.ReadU32());
  std::vector<std::unique_ptr<Column>> columns;
  columns.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    PINOT_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    const FieldSpec* spec = schema.GetField(name);
    if (spec == nullptr) {
      return Status::Corruption("column not in schema: " + name);
    }
    PINOT_ASSIGN_OR_RETURN(Dictionary dictionary,
                           Dictionary::Deserialize(&reader));
    PINOT_ASSIGN_OR_RETURN(ForwardIndex forward,
                           ForwardIndex::Deserialize(&reader));
    ColumnStats stats;
    PINOT_ASSIGN_OR_RETURN(stats.cardinality, reader.ReadI32());
    PINOT_ASSIGN_OR_RETURN(stats.min_value, ReadValue(&reader));
    PINOT_ASSIGN_OR_RETURN(stats.max_value, ReadValue(&reader));
    PINOT_ASSIGN_OR_RETURN(uint8_t is_sorted, reader.ReadU8());
    stats.is_sorted = is_sorted != 0;
    PINOT_ASSIGN_OR_RETURN(stats.total_entries, reader.ReadU32());
    PINOT_ASSIGN_OR_RETURN(stats.max_entries_per_row, reader.ReadU32());
    auto column = std::make_unique<Column>(*spec, std::move(dictionary),
                                           std::move(forward), stats);
    PINOT_ASSIGN_OR_RETURN(uint8_t has_inverted, reader.ReadU8());
    if (has_inverted != 0) {
      PINOT_ASSIGN_OR_RETURN(InvertedIndex inverted,
                             InvertedIndex::Deserialize(&reader));
      column->SetInvertedIndex(
          std::make_unique<InvertedIndex>(std::move(inverted)));
    }
    PINOT_ASSIGN_OR_RETURN(uint8_t has_sorted, reader.ReadU8());
    if (has_sorted != 0) {
      PINOT_ASSIGN_OR_RETURN(SortedIndex sorted,
                             SortedIndex::Deserialize(&reader));
      column->SetSortedIndex(std::make_unique<SortedIndex>(std::move(sorted)));
    }
    columns.push_back(std::move(column));
  }

  auto segment = std::make_shared<ImmutableSegment>(
      std::move(schema), std::move(metadata), std::move(columns));

  PINOT_ASSIGN_OR_RETURN(uint8_t has_star_tree, reader.ReadU8());
  if (has_star_tree != 0) {
    PINOT_ASSIGN_OR_RETURN(StarTree tree, StarTree::Deserialize(&reader));
    segment->SetStarTree(std::make_unique<StarTree>(std::move(tree)));
  }
  return segment;
}

}  // namespace pinot
