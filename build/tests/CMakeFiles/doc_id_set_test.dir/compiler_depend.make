# Empty compiler generated dependencies file for doc_id_set_test.
# This may be replaced when dependencies are built.
