#include "routing/routing.h"

#include <gtest/gtest.h>

#include <set>

namespace pinot {
namespace {

// segment -> replicas fixture: `num_segments` segments spread over
// `num_servers` servers with `replicas` replicas each (round-robin).
std::map<std::string, std::vector<std::string>> MakeReplicaMap(
    int num_segments, int num_servers, int replicas) {
  std::map<std::string, std::vector<std::string>> out;
  for (int s = 0; s < num_segments; ++s) {
    std::vector<std::string> servers;
    for (int r = 0; r < replicas; ++r) {
      servers.push_back("server-" + std::to_string((s + r) % num_servers));
    }
    out["segment-" + std::to_string(s)] = std::move(servers);
  }
  return out;
}

// Every segment appears exactly once across the routing table, on one of
// its replicas.
void CheckCoverage(
    const RoutingTable& table,
    const std::map<std::string, std::vector<std::string>>& replicas) {
  std::set<std::string> seen;
  for (const auto& [server, segments] : table.server_segments) {
    for (const auto& segment : segments) {
      EXPECT_TRUE(seen.insert(segment).second)
          << segment << " routed twice";
      const auto& candidates = replicas.at(segment);
      EXPECT_NE(std::find(candidates.begin(), candidates.end(), server),
                candidates.end())
          << segment << " routed to non-replica " << server;
    }
  }
  EXPECT_EQ(seen.size(), replicas.size()) << "not all segments covered";
}

TEST(RoutingTest, QueryableReplicasFiltersStates) {
  TableView view;
  view["s1"] = {{"a", SegmentState::kOnline}, {"b", SegmentState::kOffline}};
  view["s2"] = {{"a", SegmentState::kConsuming}};
  view["s3"] = {{"b", SegmentState::kOffline}};
  auto replicas = QueryableReplicas(view);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas["s1"], (std::vector<std::string>{"a"}));
  EXPECT_EQ(replicas["s2"], (std::vector<std::string>{"a"}));
}

TEST(RoutingTest, BalancedCoversEverySegmentOnce) {
  Random rng(1);
  auto replicas = MakeReplicaMap(100, 10, 3);
  RoutingTable table = BuildBalancedRoutingTable(replicas, &rng);
  CheckCoverage(table, replicas);
  EXPECT_EQ(table.total_segments(), 100u);
  // Balanced: every server gets roughly 10 segments.
  for (const auto& [server, segments] : table.server_segments) {
    EXPECT_GE(segments.size(), 5u);
    EXPECT_LE(segments.size(), 15u);
  }
}

TEST(RoutingTest, GenerateRoutingTableRespectsTargetServerCount) {
  Random rng(7);
  auto replicas = MakeReplicaMap(200, 20, 3);
  for (int target : {4, 8, 12}) {
    RoutingTable table = GenerateRoutingTable(replicas, target, &rng);
    CheckCoverage(table, replicas);
    // Algorithm 1 may add servers beyond T to cover orphans, but should
    // stay near the target, far below the full cluster.
    EXPECT_GE(table.num_servers(), std::min(target, 20));
    EXPECT_LE(table.num_servers(), 20);
  }
}

TEST(RoutingTest, GenerateUsesAllServersWhenFewerThanTarget) {
  Random rng(7);
  auto replicas = MakeReplicaMap(30, 3, 2);
  RoutingTable table = GenerateRoutingTable(replicas, 10, &rng);
  CheckCoverage(table, replicas);
  EXPECT_EQ(table.num_servers(), 3);
}

TEST(RoutingTest, MetricIsVarianceOfLoad) {
  RoutingTable even;
  even.server_segments["a"] = {"s1", "s2"};
  even.server_segments["b"] = {"s3", "s4"};
  EXPECT_DOUBLE_EQ(RoutingTableMetric(even), 0.0);

  RoutingTable skewed;
  skewed.server_segments["a"] = {"s1", "s2", "s3"};
  skewed.server_segments["b"] = {"s4"};
  EXPECT_DOUBLE_EQ(RoutingTableMetric(skewed), 1.0);  // mean 2, deviations ±1.
}

TEST(RoutingTest, Algorithm2KeepsLowestVarianceTables) {
  Random rng(42);
  auto replicas = MakeReplicaMap(300, 24, 3);
  GeneratedRoutingOptions options;
  options.target_server_count = 6;
  options.tables_to_generate = 200;
  options.tables_to_keep = 10;
  auto tables = GenerateRoutingTables(replicas, options, &rng);
  ASSERT_EQ(tables.size(), 10u);
  for (const auto& table : tables) CheckCoverage(table, replicas);
  // Kept tables are sorted best-first and at least as good as a fresh
  // random single candidate on average.
  for (size_t i = 1; i < tables.size(); ++i) {
    EXPECT_LE(RoutingTableMetric(tables[i - 1]),
              RoutingTableMetric(tables[i]) + 1e-9);
  }
  double fresh = 0;
  for (int i = 0; i < 20; ++i) {
    fresh += RoutingTableMetric(GenerateRoutingTable(replicas, 6, &rng));
  }
  fresh /= 20;
  EXPECT_LE(RoutingTableMetric(tables[0]), fresh + 1e-9);
}

TEST(RoutingTest, GeneratedTablesContactFewerServersThanBalanced) {
  // The point of the strategy (section 4.4): fewer hosts per query on a
  // large cluster.
  Random rng(3);
  auto replicas = MakeReplicaMap(600, 50, 3);
  RoutingTable balanced = BuildBalancedRoutingTable(replicas, &rng);
  RoutingTable generated = GenerateRoutingTable(replicas, 8, &rng);
  CheckCoverage(generated, replicas);
  EXPECT_EQ(balanced.num_servers(), 50);
  // The ring-replica fixture needs >= ~17 servers for coverage; the greedy
  // strategy should stay well below the full 50.
  EXPECT_LT(generated.num_servers(), 32);
}

TEST(RoutingTest, SingleSegment) {
  Random rng(5);
  std::map<std::string, std::vector<std::string>> replicas = {
      {"only", {"a", "b"}}};
  RoutingTable table = GenerateRoutingTable(replicas, 4, &rng);
  CheckCoverage(table, replicas);
  EXPECT_EQ(table.total_segments(), 1u);
}

TEST(RoutingTest, EmptyInput) {
  Random rng(5);
  auto tables = GenerateRoutingTables({}, GeneratedRoutingOptions{}, &rng);
  EXPECT_TRUE(tables.empty());
}

TEST(ServerStatsTest, ColdServerUsesOptimisticDefaults) {
  ServerStatsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.ScoreOf("never-seen"),
                   registry.options().cold_latency_millis);
  ServerStats* stats = registry.Get("a");
  EXPECT_DOUBLE_EQ(stats->LatencyEwmaMillis(),
                   registry.options().cold_latency_millis);
  EXPECT_EQ(stats->InFlight(), 0);
  EXPECT_EQ(stats->Samples(), 0u);
}

TEST(ServerStatsTest, EwmaConvergesOnObservedLatency) {
  ServerStatsRegistry registry;
  for (int i = 0; i < 50; ++i) {
    registry.OnCallStart("a");
    registry.OnCallFinish("a", 40.0, /*success=*/true);
  }
  const ServerStats* stats = registry.Find("a");
  ASSERT_NE(stats, nullptr);
  EXPECT_NEAR(stats->LatencyEwmaMillis(), 40.0, 1.0);
  EXPECT_EQ(stats->InFlight(), 0);
  EXPECT_EQ(stats->Samples(), 50u);
}

TEST(ServerStatsTest, InFlightScalesTheScore) {
  ServerStatsRegistry registry;
  registry.OnCallStart("a");
  registry.OnCallFinish("a", 10.0, true);
  const double idle_score = registry.ScoreOf("a");
  registry.OnCallStart("a");
  registry.OnCallStart("a");
  EXPECT_NEAR(registry.ScoreOf("a"), idle_score * 3.0, 1e-9);
  registry.OnCallFinish("a", 10.0, true);
  registry.OnCallFinish("a", 10.0, true);
}

TEST(ServerStatsTest, FailuresPenalizeAndSuccessesForgive) {
  ServerStatsRegistry registry;
  registry.OnCallStart("a");
  registry.OnCallFinish("a", 2.0, true);
  const double before = registry.ScoreOf("a");
  registry.PenalizeFailure("a");
  registry.PenalizeFailure("a");
  EXPECT_GT(registry.ScoreOf("a"), before * 2.0);
  // Penalty growth is capped, so recovery doesn't take forever.
  for (int i = 0; i < 1000; ++i) registry.PenalizeFailure("a");
  EXPECT_LE(registry.Find("a")->LatencyEwmaMillis(),
            registry.options().max_ewma_millis);
  // Fresh fast samples pull the EWMA back down geometrically.
  for (int i = 0; i < 60; ++i) {
    registry.OnCallStart("a");
    registry.OnCallFinish("a", 2.0, true);
  }
  EXPECT_NEAR(registry.Find("a")->LatencyEwmaMillis(), 2.0, 1.0);
}

TEST(ServerStatsTest, HedgeBudgetWarmupAndClamping) {
  ServerStatsRegistry registry;
  // No samples yet: budget is the cap (hedging effectively disabled).
  EXPECT_DOUBLE_EQ(registry.HedgeBudgetMillis(95.0, 5.0, 2000.0, 10), 2000.0);
  for (int i = 0; i < 100; ++i) {
    registry.OnCallStart("a");
    registry.OnCallFinish("a", 20.0, true);
  }
  // Warm: the p95 of a constant distribution is ~20ms, inside the clamp.
  const double budget = registry.HedgeBudgetMillis(95.0, 5.0, 2000.0, 10);
  EXPECT_GE(budget, 5.0);
  EXPECT_LE(budget, 50.0);
  // Floor and cap clamp pathological percentile estimates.
  EXPECT_DOUBLE_EQ(registry.HedgeBudgetMillis(95.0, 100.0, 2000.0, 10),
                   100.0);
  EXPECT_DOUBLE_EQ(registry.HedgeBudgetMillis(95.0, 1.0, 10.0, 10), 10.0);
}

TEST(RoutingTest, AdaptivePickPrefersLowerScoredReplica) {
  ServerStatsRegistry registry;
  for (int i = 0; i < 30; ++i) {
    registry.OnCallStart("fast");
    registry.OnCallFinish("fast", 1.0, true);
    registry.OnCallStart("slow");
    registry.OnCallFinish("slow", 200.0, true);
  }
  Random rng(11);
  const std::vector<std::string> servers = {"fast", "slow"};
  int fast_picks = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string pick = PickReplicaAdaptive(
        servers, {}, nullptr, &registry, /*explore_probability=*/0, &rng);
    if (pick == "fast") ++fast_picks;
  }
  // Power-of-two-choices with two candidates and explore off always
  // compares both and must always choose the fast one.
  EXPECT_EQ(fast_picks, 200);
}

TEST(RoutingTest, AdaptivePickExploresUniformly) {
  ServerStatsRegistry registry;
  registry.OnCallStart("fast");
  registry.OnCallFinish("fast", 1.0, true);
  registry.OnCallStart("slow");
  registry.OnCallFinish("slow", 200.0, true);
  Random rng(13);
  const std::vector<std::string> servers = {"fast", "slow"};
  int slow_picks = 0;
  for (int i = 0; i < 2000; ++i) {
    if (PickReplicaAdaptive(servers, {}, nullptr, &registry,
                            /*explore_probability=*/1.0, &rng) == "slow") {
      ++slow_picks;
    }
  }
  // Always exploring = uniform random: the slow server still gets probed
  // about half the time.
  EXPECT_GT(slow_picks, 800);
  EXPECT_LT(slow_picks, 1200);
}

TEST(RoutingTest, AdaptivePickHonorsExcludeAndUsable) {
  ServerStatsRegistry registry;
  Random rng(17);
  const std::vector<std::string> servers = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(PickReplicaAdaptive(
                  servers, {"a"},
                  [](const std::string& s) { return s != "c"; }, &registry,
                  0.05, &rng),
              "b");
  }
  EXPECT_EQ(PickReplicaAdaptive(servers, {"a", "b"},
                                [](const std::string& s) { return s != "c"; },
                                &registry, 0.05, &rng),
            "");
}

}  // namespace
}  // namespace pinot
